// Package serve is the concurrent front-end the paper's controller lacks:
// a serving layer that shards the keyspace across a pool of independent
// crash-consistent stores and multiplexes concurrent clients into them.
//
// The concurrency model is shard-per-goroutine. Block addresses route
// deterministically to shards (shard = addr mod S), each shard owns one
// single-threaded backend controller, and exactly one worker goroutine
// drives it — so the controllers themselves never see concurrency, which
// is precisely the regime the §4 crash-consistency protocol was proved
// in. Clients submit requests into bounded per-shard queues; the worker
// coalesces queued requests into protocol rounds (batches), executes
// them back-to-back, and replies through per-request channels.
//
// Routing goes through an immutable, epoch-stamped table swapped
// atomically (copy-on-write): the stable fast path costs one atomic
// pointer load. Reshard replaces the table stripe by stripe, migrating
// the keyspace onto a freshly built shard set while unaffected stripes
// keep serving (see reshard.go and DESIGN.md §8).
//
// Overload never blocks a client: a full queue fails fast with
// ErrOverloaded. Cancellation is honoured at both ends: a client whose
// context dies while waiting stops waiting (the worker's reply is
// buffered, so it never blocks either), and a request whose context is
// already dead when the worker dequeues it is answered with the context
// error without touching the backend.
//
// Injected power failures surface as ErrInterrupted on the victim
// request; the worker immediately runs the scheme's recovery procedure
// (§4.3) and continues the round, so one crash never poisons a shard.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/config"
	"repro/internal/oracle"
	"repro/internal/oram"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/storage/filestore"
)

// Typed serving-layer errors.
var (
	// ErrOverloaded reports a full shard queue. The request was not
	// enqueued; the caller may retry after backing off.
	ErrOverloaded = errors.New("serve: shard queue full")
	// ErrPoolClosed reports a submit after Close began.
	ErrPoolClosed = errors.New("serve: pool closed")
	// ErrInterrupted reports an access interrupted by a simulated power
	// failure. The shard has already recovered (§4.3); per the crash
	// contract the interrupted op either fully persisted or never
	// happened, so the caller may re-issue it.
	ErrInterrupted = errors.New("serve: access interrupted by simulated power failure (shard recovered)")
	// ErrResharding reports an access to a keyspace stripe that is being
	// migrated by an in-flight Reshard. The request touched no backend;
	// the stripe unfreezes within one migration step, so the caller may
	// retry after backing off (the network front-end maps this to a
	// RETRY_AFTER status frame).
	ErrResharding = errors.New("serve: keyspace stripe migrating; retry")
	// ErrReshardBusy reports a Reshard call while another is in flight.
	ErrReshardBusy = errors.New("serve: reshard already in progress")
)

// errRouteChanged is the internal retry signal: the routing table was
// swapped between route resolution and enqueue, so the request must be
// re-routed against the new table. Never escapes the package.
var errRouteChanged = errors.New("serve: routing table changed mid-submit")

// Backend is one shard's underlying store: the oracle's uniform target
// shape plus the recovery hook. The adapters oracle.NewTarget builds
// satisfy it for every scheme.
type Backend interface {
	oracle.Target
	Recover() error
}

// clocked is the optional backend facet pricing accesses in simulated
// cycles (the core controllers implement it; the functional Ring and
// plain stores do not, and their latencies record as zero).
type clocked interface{ Cycles() uint64 }

// prefetcher is the optional backend facet for protocol pipelining: the
// worker calls Prefetch for the next queued request while the current
// one is still in its eviction/seal tail, so the next access starts
// with its path headers already decoded. Prefetch must be protocol-free
// (no state mutation, no simulated traffic).
type prefetcher interface{ Prefetch(addr oram.Addr) }

// staged is the optional backend facet exposing cumulative per-stage
// wall time (load / crypto / evict / seal / persist); the worker
// differences snapshots around each access to feed the stage
// histograms.
type staged interface{ StageNanos() [5]int64 }

// stageNames labels the staged facet's indices (mirrors core.StageNames
// without importing core).
var stageNames = [5]string{"load", "crypto", "evict", "seal", "persist"}

// grouped is the optional backend facet for group-commit durability:
// accesses return before their mutations are durable, so the worker
// holds each successful access's reply on OnCommit (fired by the
// backend once the covering group persist barrier completes — possibly
// on the backend's persist worker, hence the buffered reply channels),
// flushes the open group when the queue idles past GroupCommitDelay,
// and drains it before exiting. SetCommitObserver feeds the group-size
// and persist-latency histograms.
type grouped interface {
	OnCommit(fn func(error))
	FlushCommits() error
	CommitPending() bool
	SetCommitObserver(fn func(ops int, persistNanos int64))
}

// crashable is the optional backend facet accepting a crash injector.
type crashable interface {
	Arm(fire func(oracle.CrashSpec) bool)
}

// snapshotter is the optional backend facet serializing the shard's
// durable NVM image (core.SaveDurable through the oracle adapter) plus
// the effective config a core.LoadDurable of that image needs; the
// resharding path migrates WPQ-persistent shards through it.
type snapshotter interface {
	SaveDurable(w io.Writer) error
	SnapshotConfig() config.Config
}

// Factory builds the backend for one shard. localBlocks is the number
// of logical blocks the shard owns after keyspace striping. A Factory
// is also used by Reshard to build the replacement shard set, so it
// must be callable more than once per pool.
type Factory func(shard int, localBlocks uint64) (Backend, error)

// Options sizes a Pool.
type Options struct {
	// Shards is the number of independent stores (default 4). For a
	// durable pool over a store directory that has been resharded, the
	// committed on-disk topology wins and this field is ignored.
	Shards int
	// NumBlocks is the total logical block count across the pool
	// (required). Block addr lives on shard addr%Shards as local block
	// addr/Shards.
	NumBlocks uint64
	// Scheme defaults to PSORAM.
	Scheme config.Scheme
	// Levels forces each shard's tree height (0 = derive from the
	// shard's block count).
	Levels int
	// Seed is the pool RNG root; each shard derives an independent
	// stream from it, so pools built from the same seed are replicas.
	Seed uint64
	// Cfg overrides the base configuration; nil means config.Default().
	Cfg *config.Config
	// QueueDepth bounds each shard's request queue (default 64). A full
	// queue rejects with ErrOverloaded.
	QueueDepth int
	// MaxBatch caps how many queued requests one protocol round
	// coalesces (default 8).
	MaxBatch int
	// StoreDir, when non-empty, backs every shard with a durable on-disk
	// store under StoreDir (create-or-recover; flat Path ORAM schemes
	// only). A fresh pool lays shards out as StoreDir/shard-NNN; after a
	// Reshard they live under an epoch directory committed by the
	// TOPOLOGY manifest (see internal/storage/filestore). Close then
	// persists and closes every shard's store after the drain. Ignored
	// when Factory is set.
	StoreDir string
	// Factory overrides backend construction (tests, custom schemes).
	// Nil means oracle.NewTarget with per-shard derived seeds.
	Factory Factory
	// CryptoWorkers sizes each shard controller's seal fan-out pool.
	// 0 or 1 keeps sealing inline on the shard worker (byte-identical to
	// the serial path).
	CryptoWorkers int
	// PipelineDepth controls intra-shard protocol pipelining. 1 disables
	// it entirely — every request runs the strict serial protocol with no
	// lookahead and no read-combining, matching the pre-pipelining
	// behavior exactly. Depths above 1 let the worker prefetch the next
	// queued request's path while the current one finishes, and collapse
	// duplicate-address reads within one coalesced round into a single
	// physical access. 0 defaults to 4.
	PipelineDepth int
	// GroupCommitOps batches each durable shard's persist barrier across
	// up to this many accesses: replies are held until the covering
	// group flushes, so acks still imply durability, but the fsync floor
	// is paid once per group instead of once per access. <= 1 keeps the
	// per-access serial barrier (byte-identical on disk). Only effective
	// for durable backends (StoreDir, or a Factory whose backends
	// implement the group-commit facet).
	GroupCommitOps int
	// GroupCommitDelay bounds how long an idle shard may hold an open
	// commit group: when the worker's queue is empty and acks are
	// pending, the group is flushed after this long. 0 defaults to 2ms
	// when GroupCommitOps > 1.
	GroupCommitDelay time.Duration
}

func (o *Options) normalize() error {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.NumBlocks == 0 {
		return errors.New("serve: Options.NumBlocks is required")
	}
	if uint64(o.Shards) > o.NumBlocks {
		return fmt.Errorf("serve: %d shards need at least %d blocks, have %d", o.Shards, o.Shards, o.NumBlocks)
	}
	if o.Scheme == config.SchemeNonORAM && o.Factory == nil {
		o.Scheme = config.SchemePSORAM
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 8
	}
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = 4
	}
	if o.GroupCommitOps > 1 && o.GroupCommitDelay <= 0 {
		o.GroupCommitDelay = 2 * time.Millisecond
	}
	return nil
}

// ShardOf is the routing function: the shard owning global block addr.
// It is pure arithmetic — the same address maps to the same shard in
// every pool with the same shard count, across restarts.
func ShardOf(addr uint64, shards int) int { return int(addr % uint64(shards)) }

// localAddr is addr's block index within its shard's keyspace stripe.
func localAddr(addr uint64, shards int) oram.Addr { return oram.Addr(addr / uint64(shards)) }

// localBlocks is how many of the n global blocks stripe onto shard s.
func localBlocks(n uint64, shards, s int) uint64 {
	return (n - uint64(s) + uint64(shards) - 1) / uint64(shards)
}

// stripeState is one old stripe's position in an in-flight reshard:
// still served by its old shard, frozen while its blocks move, or
// re-routed to the new shard set.
type stripeState uint8

const (
	stripeOld stripeState = iota
	stripeMigrating
	stripeNew
)

// routeTable is the pool's immutable routing state. Stable pools have
// next == nil and route addr to shards[addr%S]. During a reshard, next
// holds the replacement shard set and state tracks each old stripe
// (addr%oldS): OLD routes to the old shard, MIGRATING rejects with
// ErrResharding, NEW routes to the new set — with writes mirrored back
// to the old shard so an abort (or a crash before the topology commit)
// never loses an acknowledged write. Every transition installs a fresh
// table; a table, once published, is never mutated.
type routeTable struct {
	epoch  uint64
	shards []*shard      // serving set (stable), or the old set mid-reshard
	next   []*shard      // replacement set; nil when stable
	state  []stripeState // per old stripe; nil when stable
}

// route resolves addr: the shard to submit to, the shard-local address,
// and — for writes landing on an already-migrated stripe — the old
// shard to mirror the write into.
func (rt *routeTable) route(addr uint64) (primary *shard, local oram.Addr, mirror *shard, mirrorLocal oram.Addr, err error) {
	oldS := uint64(len(rt.shards))
	if rt.next == nil {
		return rt.shards[addr%oldS], oram.Addr(addr / oldS), nil, 0, nil
	}
	o := addr % oldS
	switch rt.state[o] {
	case stripeOld:
		return rt.shards[o], oram.Addr(addr / oldS), nil, 0, nil
	case stripeMigrating:
		return nil, 0, nil, 0, ErrResharding
	default: // stripeNew
		newS := uint64(len(rt.next))
		return rt.next[addr%newS], oram.Addr(addr / newS), rt.shards[o], oram.Addr(addr / oldS), nil
	}
}

// live returns every shard the table references (serving set plus the
// replacement set mid-reshard).
func (rt *routeTable) live() []*shard {
	if rt.next == nil {
		return rt.shards
	}
	all := make([]*shard, 0, len(rt.shards)+len(rt.next))
	all = append(all, rt.shards...)
	return append(all, rt.next...)
}

// request kinds a shard worker executes.
type kind uint8

const (
	kindAccess kind = iota
	kindPeek
	kindInvariants
	kindArm
	// kindExec runs an arbitrary closure on the shard's worker goroutine,
	// preserving the single-threaded backend contract. The resharding
	// path extracts a frozen shard's blocks through it.
	kindExec
)

type response struct {
	value []byte
	leaf  oram.Leaf
	errs  []error
	err   error
}

// request is a pooled submission envelope. The reply channel is
// allocated once per request object and buffered(1), so the worker
// never blocks on it; the object cycles through Pool.reqPool and is
// reused only after its reply has been received (an abandoned request —
// client context died first — is left to the GC, because its late
// reply would otherwise leak into the next user of the channel).
type request struct {
	kind  kind
	op    oram.Op
	addr  oram.Addr // shard-local
	data  []byte
	fire  func(oracle.CrashSpec) bool
	fn    func(b Backend) error // kindExec body
	ctx   context.Context
	reply chan response
}

// shard is one keyspace stripe: a single-threaded backend plus the one
// goroutine allowed to touch it.
type shard struct {
	id       int
	blocks   uint64 // local block count (stats)
	backend  Backend
	clock    clocked    // nil when the backend has no cycle clock
	prefetch prefetcher // nil when pipelining is off or unsupported
	stages   staged     // nil when the backend has no stage clock
	grouped  grouped    // nil when group commit is off or unsupported
	queue    chan *request
	done     chan struct{} // closed when the worker exits (per-shard join)

	// Worker-owned pipelining scratch (no locks: one worker per shard).
	stageLast [5]int64     // last StageNanos snapshot
	combine   []int        // per-round: leader index for combinable reads, -1 = physical
	caps      []combineCap // per-round leader value captures

	// closeMu serializes sends on queue against its close: submitters
	// hold the read side around the send, teardown (pool Close, or
	// Reshard retiring a shard set) holds the write side around
	// close(queue). closed is the queue's state, guarded by closeMu —
	// per-shard, because Reshard closes old shards while the pool as a
	// whole keeps serving.
	closeMu sync.RWMutex
	closed  bool

	// Counters are atomics (written by the worker and the submit path,
	// read by Stats), each padded to its own cache line so shards and
	// adjacent counters never false-share; the histograms are
	// worker-owned and guarded by mu.
	submitted  stats.PaddedUint64
	rejected   stats.PaddedUint64
	completed  stats.PaddedUint64
	expired    stats.PaddedUint64
	crashes    stats.PaddedUint64
	recoveries stats.PaddedUint64
	batches    stats.PaddedUint64
	combined   stats.PaddedUint64 // reads served from a round-mate's access
	flushes    stats.PaddedUint64 // group persist barriers run (group commit)

	mu        sync.Mutex
	latency   stats.Histogram    // per-access service time, simulated cycles
	batch     stats.Histogram    // requests coalesced per protocol round
	stageHist [5]stats.Histogram // per-access wall ns per protocol stage
	groupHist stats.Histogram    // accesses covered per group persist barrier
	persistNs stats.Histogram    // wall ns per group barrier, flush → durable
}

// combineCap captures one physical access's outcome for round-mates that
// combine with it: the post-access value (read result, or the data just
// written) and the leaf of the physical round. The value buffer is
// capture-owned and reused across rounds.
type combineCap struct {
	want  bool // some later read in this round combines with this access
	ok    bool // the access succeeded and value/leaf are valid
	leaf  oram.Leaf
	value []byte
}

// Pool is the concurrent serving layer: S shards, S workers, bounded
// queues in front. All methods are safe for concurrent use.
type Pool struct {
	opts   Options
	router atomic.Pointer[routeTable]
	wg     sync.WaitGroup // every worker ever started (old sets included)

	closed  atomic.Bool // submits re-check under the shard's closeMu
	reqPool sync.Pool   // *request envelopes with their reply channels

	// reshardMu serializes Reshard against itself and against Close.
	// Invariant: whenever it is free, the published table is stable
	// (next == nil).
	reshardMu sync.Mutex
	storeRoot string // durable pool root; "" for in-memory or Factory pools
}

// New builds and starts a pool. The returned Pool is serving; callers
// own shutting it down with Close. Over a store directory that holds a
// committed reshard topology, the on-disk shard count and epoch are
// adopted (the TOPOLOGY manifest is authoritative — the pool may have
// been resharded since the flags were written down).
func New(opts Options) (*Pool, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	epoch := uint64(0)
	p := &Pool{opts: opts}
	if opts.StoreDir != "" && opts.Factory == nil {
		topo, err := filestore.ReadTopology(opts.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		if topo != nil {
			opts.Shards = topo.Shards
			epoch = topo.Epoch
			if uint64(opts.Shards) > opts.NumBlocks {
				return nil, fmt.Errorf("serve: committed topology has %d shards, need at least %d blocks, have %d",
					opts.Shards, opts.Shards, opts.NumBlocks)
			}
			p.opts.Shards = opts.Shards
		}
		if err := filestore.CleanStale(opts.StoreDir, topo); err != nil {
			return nil, fmt.Errorf("serve: %w", err)
		}
		p.storeRoot = opts.StoreDir
	}
	p.reqPool.New = func() any { return &request{reply: make(chan response, 1)} }
	shards := make([]*shard, opts.Shards)
	for s := 0; s < opts.Shards; s++ {
		dir := ""
		if p.storeRoot != "" {
			dir = filestore.ShardDir(p.storeRoot, epoch, s)
		}
		b, err := p.buildBackend(s, localBlocks(opts.NumBlocks, opts.Shards, s), dir)
		if err != nil {
			return nil, fmt.Errorf("serve: shard %d: %w", s, err)
		}
		shards[s] = p.newShard(s, b)
	}
	p.router.Store(&routeTable{epoch: epoch, shards: shards})
	return p, nil
}

// buildBackend constructs one shard's backend: the Options.Factory when
// set, otherwise oracle.NewTarget with a per-shard derived seed and the
// given durable directory ("" = in-memory). Reshard calls it again for
// the replacement shard set.
func (p *Pool) buildBackend(s int, local uint64, dir string) (Backend, error) {
	if p.opts.Factory != nil {
		return p.opts.Factory(s, local)
	}
	// Derive the tree height here rather than leaving it to the
	// controller: ringoram.New requires an explicit height, and the WPQ
	// sizing in oracle.NewTarget scales with it.
	levels := p.opts.Levels
	if levels == 0 {
		cfg := config.Default()
		if p.opts.Cfg != nil {
			cfg = *p.opts.Cfg
		}
		levels = cfg.TreeLevelsFor(local)
	}
	t, err := oracle.NewTarget(oracle.Params{
		Scheme:           p.opts.Scheme,
		NumBlocks:        local,
		Levels:           levels,
		Seed:             rng.DeriveSeed(p.opts.Seed, 0x5e4e, uint64(s)),
		Cfg:              p.opts.Cfg,
		StoreDir:         dir,
		CryptoWorkers:    p.opts.CryptoWorkers,
		GroupCommitOps:   p.opts.GroupCommitOps,
		GroupCommitDelay: p.opts.GroupCommitDelay,
	})
	if err != nil {
		return nil, err
	}
	b, ok := t.(Backend)
	if !ok {
		return nil, fmt.Errorf("serve: %v target does not support recovery", p.opts.Scheme)
	}
	return b, nil
}

// newShard wraps a backend in a shard and starts its worker.
func (p *Pool) newShard(id int, b Backend) *shard {
	sh := &shard{
		id:      id,
		blocks:  b.NumBlocks(),
		backend: b,
		queue:   make(chan *request, p.opts.QueueDepth),
		done:    make(chan struct{}),
	}
	sh.clock, _ = b.(clocked)
	sh.stages, _ = b.(staged)
	if p.opts.PipelineDepth > 1 {
		sh.prefetch, _ = b.(prefetcher)
	}
	if p.opts.GroupCommitOps > 1 {
		sh.grouped, _ = b.(grouped)
		if sh.grouped != nil {
			// The observer runs on the backend's persist worker;
			// histograms are mu-guarded, so a third writer is fine.
			sh.grouped.SetCommitObserver(func(ops int, persistNanos int64) {
				sh.flushes.Add(1)
				sh.mu.Lock()
				sh.groupHist.Observe(uint64(ops))
				sh.persistNs.Observe(uint64(persistNanos))
				sh.mu.Unlock()
			})
		}
	}
	sh.combine = make([]int, 0, p.opts.MaxBatch)
	sh.caps = make([]combineCap, p.opts.MaxBatch)
	p.wg.Add(1)
	go p.work(sh)
	return sh
}

// work is a shard's worker loop: block for one request, coalesce up to
// MaxBatch-1 more that are already queued, and run them as one protocol
// round. With pipelining on (PipelineDepth > 1), the round is planned
// before execution: duplicate-address reads combine with the latest
// preceding access to their address (one physical round, value fanned
// out), and after each access the worker prefetches the next request's
// path so its header decodes overlap the current access's tail. Under
// group commit, an idle queue with held acks flushes the open group
// after GroupCommitDelay. Exits when the queue is closed and drained —
// flushing any open group on the way out, so every request accepted
// before Close is answered.
func (p *Pool) work(sh *shard) {
	defer close(sh.done)
	defer p.wg.Done()
	batch := make([]*request, 0, p.opts.MaxBatch)
	combining := p.opts.PipelineDepth > 1
	for {
		var first *request
		var ok bool
		if sh.grouped != nil && sh.grouped.CommitPending() {
			// Acks are held on an open commit group and no request is
			// ready: bound their wait. The flush error (if any) reaches
			// the held replies through their tickets.
			select {
			case first, ok = <-sh.queue:
			case <-time.After(p.opts.GroupCommitDelay):
				sh.grouped.FlushCommits()
				continue
			}
		} else {
			first, ok = <-sh.queue
		}
		if !ok {
			break
		}
		batch = append(batch[:0], first)
	coalesce:
		for len(batch) < p.opts.MaxBatch {
			select {
			case r, ok := <-sh.queue:
				if !ok {
					break coalesce
				}
				batch = append(batch, r)
			default:
				break coalesce
			}
		}
		sh.batches.Add(1)
		occ := uint64(len(batch))
		sh.planCombines(batch, combining)
		for i, r := range batch {
			var cc *combineCap
			if combining {
				if j := sh.combine[i]; j >= 0 && sh.caps[j].ok &&
					(r.ctx == nil || r.ctx.Err() == nil) {
					// Read-combining fast path: a round-mate already ran
					// the physical access for this address; fan its value
					// out without another round.
					c := &sh.caps[j]
					sh.combined.Add(1)
					sh.completed.Add(1)
					resp := response{value: append([]byte(nil), c.value...), leaf: c.leaf}
					sh.deliver(r, resp)
					continue
				}
				if sh.caps[i].want {
					cc = &sh.caps[i]
				}
			}
			p.execute(sh, r, cc)
			// Pipelining: the current request's protocol round is done (or
			// in its seal tail on a parallel crypto pool) — start decoding
			// the next queued access's path.
			if sh.prefetch != nil && i+1 < len(batch) {
				if nxt := batch[i+1]; nxt.kind == kindAccess && sh.combine[i+1] < 0 {
					sh.prefetch.Prefetch(nxt.addr)
				}
			}
		}
		sh.mu.Lock()
		sh.batch.Observe(occ)
		sh.mu.Unlock()
	}
	if sh.grouped != nil {
		// Queue closed and drained: flush the open group so every held
		// reply resolves before the shard reports done.
		sh.grouped.FlushCommits()
	}
}

// deliver sends a successful access reply — immediately, or held on the
// covering commit group's ticket under group commit, so the ack is only
// observable once the access is durable. A barrier failure replaces the
// held reply with the error. The reply channel is buffered(1), so the
// eventual send (possibly from the backend's persist worker) never
// blocks.
func (sh *shard) deliver(r *request, resp response) {
	if sh.grouped == nil {
		r.reply <- resp
		return
	}
	sh.grouped.OnCommit(func(perr error) {
		if perr != nil {
			r.reply <- response{err: fmt.Errorf("serve: shard %d: %w", sh.id, perr)}
			return
		}
		r.reply <- resp
	})
}

// planCombines marks, for each read in the round, the latest preceding
// access (read or write) to the same address: the read can be served
// from that access's captured outcome without a physical round of its
// own. Chains resolve to the physical leader, and writes are never
// combined away — they serialize in arrival order, so a combined read
// always observes the newest preceding write in the round.
func (sh *shard) planCombines(batch []*request, combining bool) {
	sh.combine = sh.combine[:0]
	for range batch {
		sh.combine = append(sh.combine, -1)
	}
	for i := range sh.caps {
		sh.caps[i].want, sh.caps[i].ok = false, false
	}
	if !combining || len(batch) < 2 {
		return
	}
	for i, r := range batch {
		if r.kind != kindAccess || r.op != oram.OpRead {
			continue
		}
		for j := i - 1; j >= 0; j-- {
			rj := batch[j]
			if rj.kind == kindAccess && rj.addr == r.addr {
				lead := j
				if sh.combine[lead] >= 0 {
					lead = sh.combine[lead] // j itself combines; share its leader
				}
				sh.combine[i] = lead
				sh.caps[lead].want = true
				break
			}
		}
	}
}

// execute runs one request on the shard's backend and replies. Crash
// errors trigger immediate recovery so the round (and the shard) keeps
// serving. When cc is non-nil a later read in this round combines with
// this access: on success the post-access value and leaf are captured
// into cc before the reply is sent (the client may mutate its buffers
// the moment the reply lands).
func (p *Pool) execute(sh *shard, r *request, cc *combineCap) {
	// A request whose deadline passed while queued is answered without
	// spending a protocol access on it.
	if r.ctx != nil && r.ctx.Err() != nil && r.kind != kindArm {
		sh.expired.Add(1)
		r.reply <- response{err: r.ctx.Err()}
		return
	}
	var resp response
	switch r.kind {
	case kindAccess:
		start := uint64(0)
		if sh.clock != nil {
			start = sh.clock.Cycles()
		}
		v, leaf, err := sh.backend.Access(r.op, r.addr, r.data)
		if errors.Is(err, oracle.ErrCrashed) {
			sh.crashes.Add(1)
			if rerr := sh.backend.Recover(); rerr != nil {
				resp.err = fmt.Errorf("serve: shard %d recovery failed: %w", sh.id, rerr)
			} else {
				sh.recoveries.Add(1)
				resp.err = ErrInterrupted
			}
		} else if err != nil {
			resp.err = fmt.Errorf("serve: shard %d: %w", sh.id, err)
		} else {
			// The backend's value may alias its internal buffer, valid
			// only until its next access; ownership transfers to the
			// client here, so this is the data path's one copy.
			resp.value, resp.leaf = append([]byte(nil), v...), leaf
			if cc != nil {
				post := v
				if r.op == oram.OpWrite {
					post = r.data
				}
				cc.value = append(cc.value[:0], post...)
				cc.leaf = leaf
				cc.ok = true
			}
			if sh.clock != nil || sh.stages != nil {
				sh.mu.Lock()
				if sh.clock != nil {
					sh.latency.Observe(sh.clock.Cycles() - start)
				}
				if sh.stages != nil {
					now := sh.stages.StageNanos()
					for k := range now {
						if d := now[k] - sh.stageLast[k]; d > 0 {
							sh.stageHist[k].Observe(uint64(d))
						}
						sh.stageLast[k] = now[k]
					}
				}
				sh.mu.Unlock()
			}
		}
	case kindPeek:
		resp.value, resp.err = sh.backend.Peek(r.addr)
	case kindInvariants:
		resp.errs = sh.backend.Invariants()
	case kindArm:
		if c, ok := sh.backend.(crashable); ok {
			c.Arm(r.fire)
		} else {
			resp.err = fmt.Errorf("serve: shard %d backend does not support crash injection", sh.id)
		}
	case kindExec:
		resp.err = r.fn(sh.backend)
	}
	if resp.err == nil || errors.Is(resp.err, ErrInterrupted) {
		sh.completed.Add(1)
	}
	if r.kind == kindAccess && resp.err == nil {
		// Successful accesses are the only replies that imply the
		// mutation is durable; under group commit they are held on their
		// commit ticket. Errors (including ErrInterrupted — the access
		// never happened) and non-access kinds reply immediately.
		sh.deliver(r, resp)
		return
	}
	r.reply <- resp
}

// getRequest takes a request envelope from the pool; putRequest resets
// it (keeping its reply channel) and returns it. Only requests whose
// reply has been received — or that were never enqueued — may be put
// back; the channel must be empty on reuse.
func (p *Pool) getRequest() *request {
	return p.reqPool.Get().(*request)
}

func (p *Pool) putRequest(r *request) {
	reply := r.reply
	*r = request{reply: reply}
	p.reqPool.Put(r)
}

// submit routes r to shard sh without ever blocking on a full queue.
// It consumes r: the envelope is recycled (or, on abandonment, leaked
// to the GC) before submit returns, so the caller must not touch it
// again.
//
// When rt is non-nil, the routing table is revalidated under the
// shard's closeMu read lock: if it changed since the caller resolved
// the route, submit backs out with errRouteChanged and the caller
// re-routes. This is the reshard freeze handshake — a stripe
// transition swaps the table and then takes the old shard's closeMu
// write lock as a barrier, so every enqueue that slipped past the old
// table has landed (and will drain) before migration reads the shard.
func (p *Pool) submit(ctx context.Context, sh *shard, r *request, rt *routeTable) (response, error) {
	r.ctx = ctx
	sh.closeMu.RLock()
	if p.closed.Load() {
		sh.closeMu.RUnlock()
		p.putRequest(r)
		return response{}, ErrPoolClosed
	}
	if sh.closed {
		// The shard's queue is gone (its set was retired by a completed
		// or aborted reshard); the current table routes elsewhere.
		sh.closeMu.RUnlock()
		p.putRequest(r)
		return response{}, errRouteChanged
	}
	if rt != nil && p.router.Load() != rt {
		sh.closeMu.RUnlock()
		p.putRequest(r)
		return response{}, errRouteChanged
	}
	select {
	case sh.queue <- r:
		sh.submitted.Add(1)
		sh.closeMu.RUnlock()
	default:
		sh.rejected.Add(1)
		sh.closeMu.RUnlock()
		p.putRequest(r)
		return response{}, ErrOverloaded
	}
	if ctx == nil {
		resp := <-r.reply
		p.putRequest(r)
		return resp, resp.err
	}
	select {
	case resp := <-r.reply:
		p.putRequest(r)
		return resp, resp.err
	case <-ctx.Done():
		// The worker will still execute (or expire) the request and its
		// reply lands in the buffered channel; the client just stops
		// waiting. The envelope is NOT recycled — the late reply sitting
		// in its channel would surface as the next user's answer.
		return response{}, ctx.Err()
	}
}

// Access performs one oblivious access on the shard owning addr and
// returns the value read (for writes: the previous value) plus the leaf
// whose path was read, mirroring the oracle target contract. During a
// reshard, writes landing on an already-migrated stripe are mirrored
// into the stripe's old shard before the access is acknowledged, so an
// acknowledged write survives both reshard outcomes (commit and abort —
// or, for durable pools, a crash recovered on either topology).
func (p *Pool) Access(ctx context.Context, op oram.Op, addr uint64, data []byte) ([]byte, oram.Leaf, error) {
	if addr >= p.opts.NumBlocks {
		return nil, 0, fmt.Errorf("serve: access to addr %d outside [0,%d)", addr, p.opts.NumBlocks)
	}
	// first remembers the initial acked primary execution across
	// mirror-driven retries: a retry re-runs the (idempotent) write so
	// the data provably lands on whatever table is now authoritative,
	// but the linearized previous value is the one the FIRST execution
	// observed — the re-run would see the write's own data.
	var first *response
	for {
		rt := p.router.Load()
		sh, local, mirror, mirrorLocal, rerr := rt.route(addr)
		if rerr != nil {
			return nil, 0, rerr
		}
		r := p.getRequest()
		r.kind, r.op, r.addr, r.data = kindAccess, op, local, data
		resp, err := p.submit(ctx, sh, r, rt)
		if err == errRouteChanged {
			continue
		}
		if err != nil || mirror == nil || op != oram.OpWrite {
			if first != nil && err == nil {
				resp = *first
			}
			return resp.value, resp.leaf, err
		}
		if first == nil {
			cp := resp
			first = &cp
		}
		if merr := p.mirrorWrite(ctx, rt, mirror, mirrorLocal, data); merr != nil {
			if merr == errRouteChanged {
				// The table moved between the primary and the mirror
				// (reshard committed, aborted, or advanced a stripe).
				// Re-run the whole write against the new table.
				continue
			}
			return nil, 0, merr
		}
		return first.value, first.leaf, nil
	}
}

// mirrorWrite replicates an acked write into the stripe's old shard
// during a reshard. Replication is an internal duty, so transient
// serving errors (full queue, injected-crash recovery) retry in place
// rather than surfacing a spurious failure for an access whose primary
// copy already landed; only errRouteChanged (caller re-routes) and hard
// errors escape.
func (p *Pool) mirrorWrite(ctx context.Context, rt *routeTable, sh *shard, local oram.Addr, data []byte) error {
	for {
		m := p.getRequest()
		m.kind, m.op, m.addr, m.data = kindAccess, oram.OpWrite, local, data
		_, err := p.submit(ctx, sh, m, rt)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrOverloaded):
			select {
			case <-time.After(50 * time.Microsecond):
			case <-ctxDone(ctx):
				return ctx.Err()
			}
		case errors.Is(err, ErrInterrupted):
			// The mirror shard recovered; the write is idempotent.
		default:
			return err
		}
	}
}

// ctxDone tolerates the package's nil-context convention (nil = no
// deadline, never cancelled).
func ctxDone(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// Read performs one oblivious read.
func (p *Pool) Read(ctx context.Context, addr uint64) ([]byte, error) {
	v, _, err := p.Access(ctx, oram.OpRead, addr, nil)
	return v, err
}

// Write performs one oblivious write; data must be BlockBytes long.
func (p *Pool) Write(ctx context.Context, addr uint64, data []byte) error {
	_, _, err := p.Access(ctx, oram.OpWrite, addr, data)
	return err
}

// Peek reads addr without a protocol access (test/debug oracle path).
func (p *Pool) Peek(ctx context.Context, addr uint64) ([]byte, error) {
	if addr >= p.opts.NumBlocks {
		return nil, fmt.Errorf("serve: peek at addr %d outside [0,%d)", addr, p.opts.NumBlocks)
	}
	for {
		rt := p.router.Load()
		sh, local, _, _, rerr := rt.route(addr)
		if rerr != nil {
			return nil, rerr
		}
		r := p.getRequest()
		r.kind, r.addr = kindPeek, local
		resp, err := p.submit(ctx, sh, r, rt)
		if err == errRouteChanged {
			continue
		}
		return resp.value, err
	}
}

// Invariants runs every shard's structural invariant checks through the
// shards' own queues (so they serialize against in-flight rounds) and
// returns all violations found, prefixed with the shard id. During a
// reshard both shard sets are checked.
func (p *Pool) Invariants(ctx context.Context) []error {
	var out []error
	for _, sh := range p.router.Load().live() {
		r := p.getRequest()
		r.kind = kindInvariants
		resp, err := p.submit(ctx, sh, r, nil)
		if err == errRouteChanged {
			continue // the shard was retired mid-call; its set is gone
		}
		if err != nil {
			out = append(out, fmt.Errorf("serve: shard %d invariants: %w", sh.id, err))
			continue
		}
		for _, e := range resp.errs {
			out = append(out, fmt.Errorf("serve: shard %d: %w", sh.id, e))
		}
	}
	return out
}

// ArmCrash installs a crash injector on one shard of the current
// serving set, serialized through its queue like any other request:
// fire is called at each protocol crash point and returning true
// simulates the power failure there. Pass nil to disarm.
func (p *Pool) ArmCrash(ctx context.Context, shard int, fire func(oracle.CrashSpec) bool) error {
	for {
		rt := p.router.Load()
		if shard < 0 || shard >= len(rt.shards) {
			return fmt.Errorf("serve: no shard %d (have %d)", shard, len(rt.shards))
		}
		r := p.getRequest()
		r.kind, r.fire = kindArm, fire
		_, err := p.submit(ctx, rt.shards[shard], r, rt)
		if err == errRouteChanged {
			continue
		}
		return err
	}
}

// NumBlocks returns the pool's total logical block count.
func (p *Pool) NumBlocks() uint64 { return p.opts.NumBlocks }

// Closed reports whether Close has begun: the drain hook for front-ends
// that must stop admitting work (and advertise "closing" to clients)
// before the pool stops answering.
func (p *Pool) Closed() bool { return p.closed.Load() }

// BlockBytes returns the block payload size in bytes.
func (p *Pool) BlockBytes() int { return p.router.Load().shards[0].backend.BlockBytes() }

// Shards returns the current serving shard count (the old set's, while
// a reshard is migrating).
func (p *Pool) Shards() int { return len(p.router.Load().shards) }

// Epoch returns the routing epoch: 0 for a pool that has never been
// resharded, incremented by each committed Reshard. For durable pools
// the epoch is committed in the store's TOPOLOGY manifest.
func (p *Pool) Epoch() uint64 { return p.router.Load().epoch }

// Resharding reports whether a Reshard is migrating stripes right now.
func (p *Pool) Resharding() bool { return p.router.Load().next != nil }

// Scheme returns the persistence protocol the shards run.
func (p *Pool) Scheme() config.Scheme { return p.router.Load().shards[0].backend.Scheme() }

// Close drains the pool: no new submits are accepted, every already
// queued request is executed (crashed rounds recover via §4.3 on the
// way out), the workers exit, and any backend implementing io.Closer is
// closed (for file-backed shards that runs the final persist barrier).
// An in-flight Reshard is aborted (it observes closed at its next
// stripe boundary and reverts) before the drain begins. The context
// bounds the drain; on expiry the workers keep draining — and the
// backends still get closed — in the background, but Close returns the
// context error.
func (p *Pool) Close(ctx context.Context) error {
	if !p.closed.CompareAndSwap(false, true) {
		return ErrPoolClosed
	}
	// Wait out any in-flight Reshard: it checks closed at every stripe
	// boundary and aborts, releasing reshardMu with a stable table.
	p.reshardMu.Lock()
	defer p.reshardMu.Unlock()
	shards := p.router.Load().live()
	// Safe: submitters re-check closed under the shard's read lock
	// before touching the queue, so taking the write lock here means
	// nobody can send on a closed channel.
	for _, sh := range shards {
		sh.closeMu.Lock()
		if !sh.closed {
			sh.closed = true
			close(sh.queue)
		}
		sh.closeMu.Unlock()
	}
	done := make(chan error, 1)
	go func() {
		// Backends are single-threaded; closing them only after every
		// worker has exited keeps that contract.
		p.wg.Wait()
		var first error
		for _, sh := range shards {
			if c, ok := sh.backend.(io.Closer); ok {
				if err := c.Close(); err != nil && first == nil {
					first = fmt.Errorf("serve: shard %d close: %w", sh.id, err)
				}
			}
		}
		done <- first
	}()
	if ctx == nil {
		return <-done
	}
	select {
	case err := <-done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}
