package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/oram"
	"repro/internal/storage/filestore"
)

// Reshard migrates the pool onto newShards independent stores while it
// keeps serving. The keyspace re-stripes from addr%oldS to addr%newS
// one old stripe at a time:
//
//  1. The stripe is frozen: the routing table is swapped to mark it
//     MIGRATING (requests to it fail fast with ErrResharding; every
//     other stripe keeps serving), and a lock barrier on the old
//     shard's queue guarantees no straggler enqueue from the previous
//     table is still in flight.
//  2. The frozen shard's blocks are extracted on its own worker
//     goroutine (preserving the single-threaded backend contract). For
//     WPQ-persistent schemes the extraction goes through the durable
//     image — core.SaveDurable, then core.LoadDurable, then reads on
//     the loaded controller — so what migrates is exactly the state §4
//     guarantees survives a power loss, and the snapshot/restore path
//     is exercised on every reshard. Other schemes extract live.
//  3. The blocks replay as ordinary writes into the new shard set,
//     then the table swaps the stripe to NEW: reads route to the new
//     set, and writes are mirrored back to the old shard so an abort
//     (or a crash before the commit point) loses nothing.
//
// When every stripe has moved, durable pools commit the new topology
// via the filestore TOPOLOGY manifest (the single crash-atomic commit
// point — recovery adopts whichever topology the manifest names), the
// stable new table is published, and the old shard set is drained,
// closed, and deleted.
//
// Reshard returns ErrReshardBusy if another reshard is in flight, and
// aborts cleanly — reverting to the old topology with no acknowledged
// write lost — on context cancellation, pool close, or migration error.
func (p *Pool) Reshard(ctx context.Context, newShards int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if newShards <= 0 {
		return fmt.Errorf("serve: reshard to %d shards", newShards)
	}
	if uint64(newShards) > p.opts.NumBlocks {
		return fmt.Errorf("serve: %d shards need at least %d blocks, have %d",
			newShards, newShards, p.opts.NumBlocks)
	}
	if !p.reshardMu.TryLock() {
		return ErrReshardBusy
	}
	defer p.reshardMu.Unlock()
	if p.closed.Load() {
		return ErrPoolClosed
	}
	rt := p.router.Load() // stable: reshardMu is held
	oldS := len(rt.shards)
	if newShards == oldS {
		return nil
	}
	oldEpoch, newEpoch := rt.epoch, rt.epoch+1

	// Build the replacement shard set. Durable pools build it directly
	// in the new epoch's directory: until the TOPOLOGY manifest commits,
	// that directory is debris a crash leaves behind and the next open's
	// CleanStale removes.
	next := make([]*shard, newShards)
	fail := func(err error) error {
		p.abortReshard(rt, next, newEpoch)
		return err
	}
	for s := 0; s < newShards; s++ {
		dir := ""
		if p.storeRoot != "" {
			dir = filestore.ShardDir(p.storeRoot, newEpoch, s)
		}
		b, err := p.buildBackend(s, localBlocks(p.opts.NumBlocks, newShards, s), dir)
		if err != nil {
			return fail(fmt.Errorf("serve: reshard: build shard %d: %w", s, err))
		}
		next[s] = p.newShard(s, b)
	}

	state := make([]stripeState, oldS)
	for o := 0; o < oldS; o++ {
		if err := ctx.Err(); err != nil {
			return fail(fmt.Errorf("serve: reshard aborted: %w", err))
		}
		if p.closed.Load() {
			return fail(ErrPoolClosed)
		}
		// Freeze stripe o: publish MIGRATING, then barrier on the old
		// shard's closeMu — every submit that routed against an older
		// table holds the read side, so once the write side is acquired
		// all such enqueues have landed and will drain ahead of the
		// extraction exec below.
		old := rt.shards[o]
		state[o] = stripeMigrating
		p.publish(oldEpoch, rt.shards, next, state)
		old.closeMu.Lock()
		old.closeMu.Unlock() //nolint:staticcheck // empty critical section IS the barrier
		blocks, err := p.extractStripe(ctx, old, localBlocks(p.opts.NumBlocks, oldS, o))
		if err != nil {
			return fail(fmt.Errorf("serve: reshard: extract stripe %d: %w", o, err))
		}
		for i, v := range blocks {
			if v == nil {
				continue // never-written block; new stores zero-fill
			}
			g := uint64(i)*uint64(oldS) + uint64(o)
			if err := p.replayWrite(ctx, next[g%uint64(newShards)], oram.Addr(g/uint64(newShards)), v); err != nil {
				return fail(fmt.Errorf("serve: reshard: replay block %d: %w", g, err))
			}
		}
		// Unfreeze onto the new set: reads route there, writes dual-write
		// back into the old shard until the commit point.
		state[o] = stripeNew
		p.publish(oldEpoch, rt.shards, next, state)
	}

	// Commit. For durable pools the TOPOLOGY rename is the crash-atomic
	// commit point; it happens BEFORE the router swap so a crash between
	// the two recovers onto the new (fully migrated, dual-written) epoch
	// rather than resurrecting an old epoch that is about to be deleted.
	if p.storeRoot != "" {
		if err := filestore.CommitTopology(p.storeRoot, filestore.Topology{Epoch: newEpoch, Shards: newShards}); err != nil {
			return fail(fmt.Errorf("serve: reshard: commit topology: %w", err))
		}
	}
	p.router.Store(&routeTable{epoch: newEpoch, shards: next})
	p.retire(rt.shards)
	if p.storeRoot != "" {
		if err := filestore.RemoveEpoch(p.storeRoot, oldEpoch); err != nil {
			// The new topology is committed and serving; stale stores are
			// debris the next open's CleanStale retries.
			return fmt.Errorf("serve: reshard committed; old epoch cleanup: %w", err)
		}
	}
	return nil
}

// publish installs a fresh routing table; the per-stripe state slice is
// copied because published tables are immutable.
func (p *Pool) publish(epoch uint64, shards, next []*shard, state []stripeState) {
	p.router.Store(&routeTable{
		epoch:  epoch,
		shards: shards,
		next:   next,
		state:  append([]stripeState(nil), state...),
	})
}

// extractStripe reads every block a frozen shard owns, on the shard's
// own worker goroutine. The returned slice is indexed by shard-local
// address; nil entries are never-written (all-zero) blocks that need no
// replay. WPQ-persistent backends are extracted through their durable
// image (SaveDurable -> LoadDurable -> read), so migration carries
// exactly the crash-surviving state.
func (p *Pool) extractStripe(ctx context.Context, sh *shard, local uint64) ([][]byte, error) {
	blocks := make([][]byte, local)
	fn := func(b Backend) error {
		// The snapshot detour is sound only for schemes whose durable
		// image is COMPLETE — the WPQ-persistent flat family. eADR is
		// Persistent() but keeps its stash in the (unserialized) eADR
		// domain, so a snapshot of it would drop in-flight blocks;
		// those schemes extract live instead.
		scheme := b.Scheme()
		wpqDurable := scheme == config.SchemePSORAM || scheme == config.SchemeNaivePSORAM
		if sn, ok := b.(snapshotter); ok && wpqDurable {
			var buf bytes.Buffer
			if err := sn.SaveDurable(&buf); err != nil {
				return fmt.Errorf("snapshot: %w", err)
			}
			ctl, err := core.LoadDurable(&buf, sn.SnapshotConfig())
			if err != nil {
				return fmt.Errorf("snapshot load: %w", err)
			}
			for i := uint64(0); i < local; i++ {
				v, err := ctl.Peek(oram.Addr(i))
				if err != nil {
					return err
				}
				if !allZero(v) {
					blocks[i] = append([]byte(nil), v...)
				}
			}
			return nil
		}
		for i := uint64(0); i < local; i++ {
			v, err := b.Peek(oram.Addr(i))
			if err != nil {
				return err
			}
			if !allZero(v) {
				blocks[i] = append([]byte(nil), v...)
			}
		}
		return nil
	}
	for {
		r := p.getRequest()
		r.kind, r.fn = kindExec, fn
		_, err := p.submit(ctx, sh, r, nil)
		switch {
		case err == nil:
			return blocks, nil
		case errors.Is(err, ErrOverloaded):
			select {
			case <-time.After(50 * time.Microsecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		default:
			return nil, err
		}
	}
}

// replayWrite lands one migrated block in its new shard, retrying the
// transient serving errors (full queue, injected-crash recovery — the
// write is idempotent).
func (p *Pool) replayWrite(ctx context.Context, sh *shard, addr oram.Addr, data []byte) error {
	for {
		r := p.getRequest()
		r.kind, r.op, r.addr, r.data = kindAccess, oram.OpWrite, addr, data
		_, err := p.submit(ctx, sh, r, nil)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, ErrOverloaded):
			select {
			case <-time.After(50 * time.Microsecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		case errors.Is(err, ErrInterrupted):
			// The shard recovered; re-issue (writes are idempotent).
		default:
			return err
		}
	}
}

// abortReshard reverts to the old topology: the stable old table is
// republished (safe — MIGRATING stripes acknowledged nothing during
// the freeze, and NEW stripes dual-wrote every acknowledged write back
// into their old shard), then the half-built new set is drained,
// closed, and its uncommitted epoch directory deleted.
func (p *Pool) abortReshard(rt *routeTable, next []*shard, newEpoch uint64) {
	p.router.Store(&routeTable{epoch: rt.epoch, shards: rt.shards})
	built := next[:0]
	for _, sh := range next {
		if sh != nil {
			built = append(built, sh)
		}
	}
	p.retire(built)
	if p.storeRoot != "" {
		filestore.RemoveEpoch(p.storeRoot, newEpoch)
	}
}

// retire drains and closes a shard set that no routing table references
// anymore: close each queue under its write lock (in-flight submitters
// either finished or will observe sh.closed and re-route), join the
// worker, and close the backend (for file-backed shards that runs the
// final persist barrier).
func (p *Pool) retire(shards []*shard) {
	for _, sh := range shards {
		sh.closeMu.Lock()
		if !sh.closed {
			sh.closed = true
			close(sh.queue)
		}
		sh.closeMu.Unlock()
	}
	for _, sh := range shards {
		<-sh.done
		if c, ok := sh.backend.(interface{ Close() error }); ok {
			c.Close()
		}
	}
}

// allZero reports whether every byte of v is zero (a never-written
// block — fresh stores zero-fill, so it needs no replay).
func allZero(v []byte) bool {
	for _, b := range v {
		if b != 0 {
			return false
		}
	}
	return true
}
