package serve

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/config"
	"repro/internal/oram"
)

// BenchmarkPoolThroughput measures end-to-end serving throughput —
// submit, queue, batch, protocol access, reply — with concurrent
// clients (b.RunParallel) over a PS-ORAM pool, across shard counts.
// The baseline lives in BENCH_serve.json (make bench-serve).
//
// Offered load scales with the shard count: 2*shards client goroutines
// per GOMAXPROCS, each with a private address stream (no shared counter
// in the submit loop), so adding shards adds demand instead of slicing
// a fixed demand thinner. ns/op is aggregate (wall time over all
// iterations) — more shards serving concurrently should push it down.
func BenchmarkPoolThroughput(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			p, err := New(Options{
				Shards:    shards,
				NumBlocks: 512,
				Scheme:    config.SchemePSORAM,
				Levels:    8,
				Seed:      1,
				// Deep queues: the benchmark measures service throughput,
				// not load-shedding.
				QueueDepth: 4096,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer p.Close(context.Background())
			data := make([]byte, p.BlockBytes())
			var gid atomic.Uint64
			b.SetParallelism(2 * shards)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				ctx := context.Background()
				// Private stream: goroutines start in disjoint regions of
				// one Weyl sequence, so the hot loop shares no state.
				i := gid.Add(1) << 32
				for pb.Next() {
					i++
					addr := (i * 2654435761) % 512 // scatter across shards
					op, payload := oram.OpRead, []byte(nil)
					if i%2 == 0 {
						op, payload = oram.OpWrite, data
					}
					if _, _, err := p.Access(ctx, op, addr, payload); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}
