package report

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/trace"
)

// tiny returns options scaled for unit tests.
func tiny() Options {
	o := Default()
	o.Accesses = 300
	o.Levels = 10
	o.Workloads = trace.Table4()[:3]
	return o
}

func TestFigure5aShape(t *testing.T) {
	tab, err := tiny().Figure5a()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if tab.NumRows() != 4 { // 3 workloads + geomean
		t.Fatalf("rows = %d, want 4\n%s", tab.NumRows(), s)
	}
	for _, col := range []string{"Baseline", "FullNVM", "PS-ORAM", "geomean"} {
		if !strings.Contains(s, col) {
			t.Errorf("missing %q in:\n%s", col, s)
		}
	}
	// Parse the geomean row: columns Baseline=1.000, then slowdowns > 1.
	gm := lastRowFloats(t, s)
	if len(gm) < 4 {
		t.Fatalf("geomean row too short: %v", gm)
	}
	for i, v := range gm {
		if v < 1.0 {
			t.Errorf("geomean column %d = %.3f < 1 (all schemes slow down vs baseline)", i, v)
		}
	}
}

func TestFigure5bShape(t *testing.T) {
	tab, err := tiny().Figure5b()
	if err != nil {
		t.Fatal(err)
	}
	gm := lastRowFloats(t, tab.String())
	// Columns: Baseline(1.0), Rcr-Baseline, Rcr-PS-ORAM, ratio.
	if len(gm) != 4 {
		t.Fatalf("geomean row: %v", gm)
	}
	if gm[1] <= 1.1 {
		t.Errorf("Rcr-Baseline geomean %.3f should be well above 1 (paper: ~1.69)", gm[1])
	}
	if gm[2] <= gm[1] {
		t.Errorf("Rcr-PS-ORAM (%.3f) should exceed Rcr-Baseline (%.3f)", gm[2], gm[1])
	}
	if gm[3] < 1.0 || gm[3] > 1.3 {
		t.Errorf("Rcr-PS/Rcr-Base ratio %.3f should be a small overhead (paper: 1.0365)", gm[3])
	}
}

func TestFigure6Shape(t *testing.T) {
	reads, err := tiny().Figure6(false)
	if err != nil {
		t.Fatal(err)
	}
	writes, err := tiny().Figure6(true)
	if err != nil {
		t.Fatal(err)
	}
	r := lastRowFloats(t, reads.String())
	w := lastRowFloats(t, writes.String())
	// Columns: Baseline, FullNVM, Naive, PS, Rcr-Base, Rcr-PS.
	if r[3] < 0.95 || r[3] > 1.1 {
		t.Errorf("PS-ORAM read traffic %.3f, want ~1.0", r[3])
	}
	if r[4] < 1.3 {
		t.Errorf("Rcr-Baseline read traffic %.3f, want well above 1 (paper: ~1.9)", r[4])
	}
	if w[2] < 1.5 {
		t.Errorf("Naive write traffic %.3f, want ~2.0", w[2])
	}
	if w[3] < 1.0 || w[3] > 1.2 {
		t.Errorf("PS-ORAM write traffic %.3f, want ~1.05", w[3])
	}
	if w[5] <= w[4] {
		t.Errorf("Rcr-PS writes (%.3f) should exceed Rcr-Baseline (%.3f)", w[5], w[4])
	}
}

func TestFigure7Shape(t *testing.T) {
	tab, err := tiny().Figure7()
	if err != nil {
		t.Fatal(err)
	}
	lines := dataLines(tab.String())
	if len(lines) != 3 {
		t.Fatalf("want 3 channel rows:\n%s", tab.String())
	}
	// PS-ORAM column (index 2 after Channels) must shrink with channels.
	psOne := fields(t, lines[0])[2]
	psTwo := fields(t, lines[1])[2]
	psFour := fields(t, lines[2])[2]
	if !(psTwo < psOne && psFour <= psTwo) {
		t.Errorf("PS-ORAM normalized time should fall with channels: %v %v %v", psOne, psTwo, psFour)
	}
}

func TestORAMCost(t *testing.T) {
	tab, err := tiny().ORAMCost()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "x") || !strings.Contains(s, "geomean") {
		t.Fatalf("unexpected table:\n%s", s)
	}
}

func TestTable1And2Render(t *testing.T) {
	t1 := Table1().String()
	for _, want := range []string{"11.839", "11.228", "SRAM"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, t1)
		}
	}
	t2 := Table2().String()
	for _, want := range []string{"eADR-ORAM", "PS-ORAM (96 entries)", "PS-ORAM (4 entries)", "J"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, t2)
		}
	}
}

func TestCrashMatrix(t *testing.T) {
	tab, err := CrashMatrix()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	// PS-ORAM must be marked consistent, Baseline must corrupt.
	for _, line := range dataLines(s) {
		if strings.HasPrefix(line, "PS-ORAM ") && !strings.Contains(line, "CRASH CONSISTENT") {
			t.Errorf("PS-ORAM row wrong: %s", line)
		}
		if strings.HasPrefix(line, "Baseline") && !strings.Contains(line, "CORRUPTS") {
			t.Errorf("Baseline row wrong: %s", line)
		}
	}
}

func TestLifetime(t *testing.T) {
	tab, err := tiny().Lifetime()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"PS-ORAM", "FullNVM", "Writes/access"} {
		if !strings.Contains(s, want) {
			t.Errorf("lifetime table missing %q:\n%s", want, s)
		}
	}
	// PS-ORAM's "vs Baseline" column must be close to 1, FullNVM's ~2.
	for _, line := range dataLines(s) {
		f := fields(t, line)
		if len(f) < 4 {
			continue
		}
		ratio := f[2]
		if strings.HasPrefix(line, "PS-ORAM ") && (ratio < 0.95 || ratio > 1.15) {
			t.Errorf("PS-ORAM lifetime ratio %.3f, want ~1", ratio)
		}
		if strings.HasPrefix(line, "FullNVM") && ratio < 1.5 {
			t.Errorf("FullNVM lifetime ratio %.3f, want ~2", ratio)
		}
	}
}

func TestRecovery(t *testing.T) {
	tab, err := Recovery()
	if err != nil {
		t.Fatal(err)
	}
	lines := dataLines(tab.String())
	if len(lines) != 3 {
		t.Fatalf("want 3 size rows:\n%s", tab.String())
	}
	// Recovery reads scale with ORAM size.
	prev := 0.0
	for _, l := range lines {
		f := fields(t, l)
		if len(f) < 3 || f[1] <= prev {
			t.Fatalf("recovery reads not increasing: %v", lines)
		}
		prev = f[1]
	}
}

// --- helpers ---

func dataLines(s string) []string {
	var out []string
	lines := strings.Split(strings.TrimSpace(s), "\n")
	// Skip title, header, separator.
	for i, l := range lines {
		if i < 3 || strings.TrimSpace(l) == "" {
			continue
		}
		out = append(out, l)
	}
	return out
}

func fields(t *testing.T, line string) []float64 {
	t.Helper()
	var out []float64
	for _, f := range strings.Fields(line) {
		if v, err := strconv.ParseFloat(f, 64); err == nil {
			out = append(out, v)
		}
	}
	return out
}

func lastRowFloats(t *testing.T, s string) []float64 {
	t.Helper()
	lines := dataLines(s)
	if len(lines) == 0 {
		t.Fatalf("no data rows in:\n%s", s)
	}
	return fields(t, lines[len(lines)-1])
}

func TestLatency(t *testing.T) {
	tab, err := tiny().Latency()
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"NonORAM", "PS-ORAM", "P99"} {
		if !strings.Contains(s, want) {
			t.Errorf("latency table missing %q:\n%s", want, s)
		}
	}
	// NonORAM must be far faster than any ORAM scheme.
	lines := dataLines(s)
	non := fields(t, lines[0])
	base := fields(t, lines[1])
	if len(non) < 2 || len(base) < 2 || non[0]*3 > base[0] {
		t.Errorf("NonORAM mean %v should be far below Baseline %v", non, base)
	}
}

func TestStashPressure(t *testing.T) {
	tab, err := StashPressure()
	if err != nil {
		t.Fatal(err)
	}
	lines := dataLines(tab.String())
	if len(lines) != 4 {
		t.Fatalf("want 4 utilization rows:\n%s", tab.String())
	}
	// 50% must be stable (the paper's operating point).
	if !strings.Contains(lines[1], "stable") {
		t.Errorf("50%% utilization not stable: %s", lines[1])
	}
	// Pressure must not decrease with utilization.
	prev := -1.0
	for _, l := range lines[:3] { // the last row may error out early
		f := fields(t, l)
		if len(f) < 3 {
			t.Fatalf("row too short: %s", l)
		}
		if f[2] < prev {
			t.Errorf("stash peak decreased with utilization:\n%s", tab.String())
		}
		prev = f[2]
	}
}

func TestRingReport(t *testing.T) {
	tab, err := Ring()
	if err != nil {
		t.Fatal(err)
	}
	lines := dataLines(tab.String())
	if len(lines) != 2 {
		t.Fatalf("want 2 protocol rows:\n%s", tab.String())
	}
	path := fields(t, lines[0])
	ring := fields(t, lines[1])
	// Ring's read bandwidth advantage must show.
	if ring[0] >= path[0] {
		t.Errorf("Ring reads/access (%.1f) should be below Path's (%.1f)", ring[0], path[0])
	}
}
