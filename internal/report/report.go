// Package report runs the paper's experiments and renders their tables
// and figure series. Each Figure*/Table* function regenerates one
// artifact of §5.2 (or §4.2.4) and returns a text table whose rows match
// what the paper plots; cmd/psoram-bench and the repository's benchmark
// harness are thin wrappers around these.
package report

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/crash"
	"repro/internal/energy"
	"repro/internal/oram"
	"repro/internal/ringoram"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options scales the experiment runs.
type Options struct {
	Cfg config.Config
	// Accesses is the LLC-miss count simulated per (workload, scheme).
	// The paper simulates 5M instructions per simpoint; relative results
	// stabilize within a few thousand ORAM accesses.
	Accesses int
	// Levels is the simulated tree height (paper: 23; smaller values
	// keep runs quick without reordering any scheme).
	Levels int
	// Workloads defaults to the full Table 4 set.
	Workloads []trace.Workload
}

// Default returns quick-run options (a subset-scale Table 3 system).
func Default() Options {
	return Options{
		Cfg:       config.Default(),
		Accesses:  3000,
		Levels:    16,
		Workloads: trace.Table4(),
	}
}

func (o Options) workloads() []trace.Workload {
	if len(o.Workloads) == 0 {
		return trace.Table4()
	}
	return o.Workloads
}

// runAll executes every workload under each scheme and returns
// results[workload][scheme].
func (o Options) runAll(schemes []config.Scheme, channels int) (map[string]map[config.Scheme]sim.Result, error) {
	cfg := o.Cfg
	cfg.Channels = channels
	out := make(map[string]map[config.Scheme]sim.Result)
	for _, w := range o.workloads() {
		out[w.Name] = make(map[config.Scheme]sim.Result)
		for _, s := range schemes {
			r, err := sim.Simulate(context.Background(), sim.Request{
				Scheme: s, Config: cfg, Workload: w, N: o.Accesses, Levels: o.Levels,
			})
			if err != nil {
				return nil, fmt.Errorf("report: %v on %s: %w", s, w.Name, err)
			}
			out[w.Name][s] = r
		}
	}
	return out, nil
}

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }

// Figure5a reproduces Fig. 5(a): normalized execution time of the
// non-recursive schemes (Z=4, 1 channel), per workload plus the mean.
func (o Options) Figure5a() (*stats.Table, error) {
	schemes := []config.Scheme{
		config.SchemeBaseline, config.SchemeFullNVM, config.SchemeFullNVMSTT,
		config.SchemeNaivePSORAM, config.SchemePSORAM,
	}
	res, err := o.runAll(schemes, 1)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Figure 5(a): normalized execution time (non-recursive, 1 channel)",
		"Workload", "Baseline", "FullNVM", "FullNVM(STT)", "Naive-PS-ORAM", "PS-ORAM")
	sums := make(map[config.Scheme][]float64)
	for _, w := range o.workloads() {
		base := res[w.Name][config.SchemeBaseline]
		row := []string{w.Name, "1.000"}
		for _, s := range schemes[1:] {
			sd := res[w.Name][s].Slowdown(base)
			row = append(row, f3(sd))
			sums[s] = append(sums[s], sd)
		}
		tab.AddRow(row...)
	}
	mean := []string{"geomean", "1.000"}
	for _, s := range schemes[1:] {
		mean = append(mean, f3(stats.GeoMean(sums[s])))
	}
	tab.AddRow(mean...)
	return tab, nil
}

// Figure5b reproduces Fig. 5(b): recursive schemes normalized to the
// non-recursive Baseline, plus the Rcr-PS-ORAM overhead over
// Rcr-Baseline that the paper quotes (3.65%).
func (o Options) Figure5b() (*stats.Table, error) {
	schemes := []config.Scheme{
		config.SchemeBaseline, config.SchemeRcrBaseline, config.SchemeRcrPSORAM,
	}
	res, err := o.runAll(schemes, 1)
	if err != nil {
		return nil, err
	}
	tab := stats.NewTable("Figure 5(b): normalized execution time (recursive, 1 channel)",
		"Workload", "Baseline", "Rcr-Baseline", "Rcr-PS-ORAM", "Rcr-PS/Rcr-Base")
	var rb, rp, rr []float64
	for _, w := range o.workloads() {
		base := res[w.Name][config.SchemeBaseline]
		b := res[w.Name][config.SchemeRcrBaseline].Slowdown(base)
		p := res[w.Name][config.SchemeRcrPSORAM].Slowdown(base)
		tab.AddRow(w.Name, "1.000", f3(b), f3(p), f3(p/b))
		rb = append(rb, b)
		rp = append(rp, p)
		rr = append(rr, p/b)
	}
	tab.AddRow("geomean", "1.000", f3(stats.GeoMean(rb)), f3(stats.GeoMean(rp)), f3(stats.GeoMean(rr)))
	return tab, nil
}

// Figure6 reproduces Fig. 6: NVM read (a) and write (b) traffic,
// normalized to Baseline.
func (o Options) Figure6(writes bool) (*stats.Table, error) {
	schemes := []config.Scheme{
		config.SchemeBaseline, config.SchemeFullNVM, config.SchemeNaivePSORAM,
		config.SchemePSORAM, config.SchemeRcrBaseline, config.SchemeRcrPSORAM,
	}
	res, err := o.runAll(schemes, 1)
	if err != nil {
		return nil, err
	}
	which := "read"
	if writes {
		which = "write"
	}
	tab := stats.NewTable(fmt.Sprintf("Figure 6: normalized NVM %s traffic (1 channel)", which),
		"Workload", "Baseline", "FullNVM", "Naive-PS-ORAM", "PS-ORAM", "Rcr-Baseline", "Rcr-PS-ORAM")
	sums := make(map[config.Scheme][]float64)
	metric := func(r sim.Result) float64 {
		if writes {
			return float64(r.Writes)
		}
		return float64(r.Reads)
	}
	for _, w := range o.workloads() {
		base := metric(res[w.Name][config.SchemeBaseline])
		row := []string{w.Name, "1.000"}
		for _, s := range schemes[1:] {
			v := metric(res[w.Name][s]) / base
			row = append(row, f3(v))
			sums[s] = append(sums[s], v)
		}
		tab.AddRow(row...)
	}
	mean := []string{"geomean", "1.000"}
	for _, s := range schemes[1:] {
		mean = append(mean, f3(stats.GeoMean(sums[s])))
	}
	tab.AddRow(mean...)
	return tab, nil
}

// Figure7 reproduces Fig. 7: multi-channel performance. Values are
// normalized to each scheme's own single-channel run (higher channel
// counts < 1.0), plus the PS-vs-Baseline gap per channel count.
func (o Options) Figure7() (*stats.Table, error) {
	schemes := []config.Scheme{
		config.SchemeBaseline, config.SchemePSORAM,
		config.SchemeRcrBaseline, config.SchemeRcrPSORAM,
	}
	byCh := make(map[int]map[string]map[config.Scheme]sim.Result)
	for _, ch := range []int{1, 2, 4} {
		res, err := o.runAll(schemes, ch)
		if err != nil {
			return nil, err
		}
		byCh[ch] = res
	}
	tab := stats.NewTable("Figure 7: multi-channel performance (geomean across workloads)",
		"Channels", "Baseline", "PS-ORAM", "Rcr-Baseline", "Rcr-PS-ORAM", "PS/Base", "RcrPS/RcrBase")
	for _, ch := range []int{1, 2, 4} {
		var cols []string
		cols = append(cols, fmt.Sprintf("%d", ch))
		var psGap, rcrGap []float64
		for _, s := range schemes {
			var ratios []float64
			for _, w := range o.workloads() {
				one := byCh[1][w.Name][s]
				cur := byCh[ch][w.Name][s]
				ratios = append(ratios, float64(cur.Cycles)/float64(one.Cycles))
			}
			cols = append(cols, f3(stats.GeoMean(ratios)))
		}
		for _, w := range o.workloads() {
			psGap = append(psGap, float64(byCh[ch][w.Name][config.SchemePSORAM].Cycles)/
				float64(byCh[ch][w.Name][config.SchemeBaseline].Cycles))
			rcrGap = append(rcrGap, float64(byCh[ch][w.Name][config.SchemeRcrPSORAM].Cycles)/
				float64(byCh[ch][w.Name][config.SchemeRcrBaseline].Cycles))
		}
		cols = append(cols, f3(stats.GeoMean(psGap)), f3(stats.GeoMean(rcrGap)))
		tab.AddRow(cols...)
	}
	return tab, nil
}

// ORAMCost reproduces the §5.1 observation: the cost of ORAM itself
// versus a non-ORAM NVM system, on 1 and 4 channels.
func (o Options) ORAMCost() (*stats.Table, error) {
	tab := stats.NewTable("ORAM cost vs non-ORAM NVM (execution-time ratio)",
		"Workload", "1-channel", "4-channel")
	var r1s, r4s []float64
	for _, w := range o.workloads() {
		ratios := make(map[int]float64)
		for _, ch := range []int{1, 4} {
			cfg := o.Cfg
			cfg.Channels = ch
			non, err := sim.Simulate(context.Background(), sim.Request{
				Scheme: config.SchemeNonORAM, Config: cfg, Workload: w, N: o.Accesses, Levels: o.Levels,
			})
			if err != nil {
				return nil, err
			}
			base, err := sim.Simulate(context.Background(), sim.Request{
				Scheme: config.SchemeBaseline, Config: cfg, Workload: w, N: o.Accesses, Levels: o.Levels,
			})
			if err != nil {
				return nil, err
			}
			ratios[ch] = float64(base.Cycles) / float64(non.Cycles)
		}
		tab.AddRow(w.Name, fmt.Sprintf("%.1fx", ratios[1]), fmt.Sprintf("%.1fx", ratios[4]))
		r1s = append(r1s, ratios[1])
		r4s = append(r4s, ratios[4])
	}
	tab.AddRow("geomean", fmt.Sprintf("%.1fx", stats.GeoMean(r1s)), fmt.Sprintf("%.1fx", stats.GeoMean(r4s)))
	return tab, nil
}

// Table1 renders the energy cost constants.
func Table1() *stats.Table {
	m := energy.Table1()
	tab := stats.NewTable("Table 1: energy cost estimation (crash draining)", "Operation", "Energy cost")
	tab.AddRow("Accessing data from SRAM", fmt.Sprintf("%.0f pJ/Byte", m.SRAMAccessPJPerByte))
	tab.AddRow("Moving data from L1D to NVM", fmt.Sprintf("%.3f nJ/Byte", m.L1ToNVMnJPerByte))
	tab.AddRow("Moving data from L2/stash/PosMap/WPQs to NVM", fmt.Sprintf("%.3f nJ/Byte", m.L2ToNVMnJPerByte))
	return tab
}

// Table2 renders the draining energy/time comparison.
func Table2() *stats.Table {
	m := energy.Table1()
	f96 := energy.Table2Footprint(96, 96)
	f4 := energy.Table2Footprint(4, 4)
	eadrORAM := m.EADRORAM(f96)
	eadrCache := m.EADRCache(f96)
	ps96 := m.PSORAM(f96)
	ps4 := m.PSORAM(f4)
	tab := stats.NewTable("Table 2: estimated draining energy and time (PS-ORAM vs eADR)",
		"System", "Energy", "Time", "Energy vs PS-ORAM(96)")
	row := func(name string, c energy.Cost) {
		r := energy.Ratio(c, ps96)
		ratio := fmt.Sprintf("%.0fx", r)
		if r < 10 {
			ratio = fmt.Sprintf("%.2fx", r)
		}
		tab.AddRow(name, fmtEnergy(c.EnergyJ), fmtTime(c.TimeS), ratio)
	}
	row("eADR-cache", eadrCache)
	row("eADR-ORAM", eadrORAM)
	row("PS-ORAM (96 entries)", ps96)
	row("PS-ORAM (4 entries)", ps4)
	return tab
}

func fmtEnergy(j float64) string {
	switch {
	case j >= 1:
		return fmt.Sprintf("%.3f J", j)
	case j >= 1e-3:
		return fmt.Sprintf("%.3f mJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3f uJ", j*1e6)
	default:
		return fmt.Sprintf("%.3f nJ", j*1e9)
	}
}

func fmtTime(s float64) string {
	switch {
	case s >= 1e-3:
		return fmt.Sprintf("%.3f ms", s*1e3)
	case s >= 1e-6:
		return fmt.Sprintf("%.3f us", s*1e6)
	default:
		return fmt.Sprintf("%.3f ns", s*1e9)
	}
}

// Latency reports the per-access latency distribution of each scheme —
// mean, median, and tail — on one representative workload. The paper
// reports only means; the tail is where the WPQ backpressure and the
// recursive chain show up.
func (o Options) Latency() (*stats.Table, error) {
	w := o.workloads()[0]
	tab := stats.NewTable(
		fmt.Sprintf("Access latency distribution on %s (core cycles)", w.Name),
		"Scheme", "Mean", "P50", "P99", "Max")
	for _, s := range []config.Scheme{
		config.SchemeNonORAM, config.SchemeBaseline, config.SchemeFullNVM,
		config.SchemeNaivePSORAM, config.SchemePSORAM,
		config.SchemeRcrBaseline, config.SchemeRcrPSORAM,
		config.SchemeRingBaseline, config.SchemeRingPSORAM,
	} {
		r, err := sim.Simulate(context.Background(), sim.Request{
			Scheme: s, Config: o.Cfg, Workload: w, N: o.Accesses, Levels: o.Levels,
		})
		if err != nil {
			return nil, err
		}
		tab.AddRow(s.String(),
			fmt.Sprintf("%.0f", r.LatencyMean),
			fmt.Sprintf("%d", r.LatencyP50),
			fmt.Sprintf("%d", r.LatencyP99),
			fmt.Sprintf("%d", r.LatencyMax))
	}
	return tab, nil
}

// Lifetime runs the NVM-lifetime study behind the abstract's "friendly
// to NVM lifetime" claim: per scheme, the write traffic each ORAM access
// imposes on the NVM (writes wear PCM cells out) and the wear imbalance
// across banks.
func (o Options) Lifetime() (*stats.Table, error) {
	schemes := []config.Scheme{
		config.SchemeBaseline, config.SchemeFullNVM, config.SchemeNaivePSORAM,
		config.SchemePSORAM, config.SchemeRcrBaseline, config.SchemeRcrPSORAM,
		config.SchemeRingBaseline, config.SchemeRingPSORAM,
	}
	tab := stats.NewTable("NVM lifetime: write pressure per ORAM access (workload geomean)",
		"Scheme", "Writes/access", "KB written/access", "vs Baseline", "Wear max/min")
	var baseWrites float64
	for _, s := range schemes {
		var wAcc, bAcc, wear []float64
		for _, w := range o.workloads() {
			cfg := o.Cfg
			r, err := sim.Simulate(context.Background(), sim.Request{
				Scheme: s, Config: cfg, Workload: w, N: o.Accesses, Levels: o.Levels,
			})
			if err != nil {
				return nil, err
			}
			wAcc = append(wAcc, float64(r.Writes)/float64(r.Accesses))
			bAcc = append(bAcc, float64(r.BytesWritten)/float64(r.Accesses)/1024)
			wear = append(wear, r.WearImbalance)
		}
		gw := stats.GeoMean(wAcc)
		if s == config.SchemeBaseline {
			baseWrites = gw
		}
		tab.AddRow(s.String(),
			fmt.Sprintf("%.1f", gw),
			fmt.Sprintf("%.2f", stats.GeoMean(bAcc)),
			fmt.Sprintf("%.3f", gw/baseWrites),
			fmt.Sprintf("%.2f", stats.GeoMean(wear)))
	}
	return tab, nil
}

// Recovery measures the §4.3 recovery procedure's cost: simulated cycles
// and NVM reads to restore a crashed controller, as a function of the
// ORAM size. PS-ORAM recovery is one sequential PosMap sweep.
func Recovery() (*stats.Table, error) {
	tab := stats.NewTable("Recovery cost after a power failure (PS-ORAM)",
		"Logical blocks", "NVM reads", "Cycles", "us @3.2GHz")
	for _, blocks := range []uint64{64, 256, 1024} {
		cfg := config.Default()
		cfg.StashEntries = 300
		ctl, err := core.New(config.SchemePSORAM, cfg, core.Options{NumBlocks: blocks})
		if err != nil {
			return nil, err
		}
		// Run a few accesses, crash between accesses, recover.
		for i := 0; i < 8; i++ {
			if _, err := ctl.Access(oram.OpRead, oram.Addr(uint64(i)%blocks), nil); err != nil {
				return nil, err
			}
		}
		ctl.CrashAt = func(core.CrashPoint) bool { return true }
		if _, err := ctl.Access(oram.OpRead, 0, nil); err != core.ErrCrashed {
			return nil, fmt.Errorf("report: crash injector did not fire: %v", err)
		}
		ctl.CrashAt = nil
		before := ctl.Now()
		if err := ctl.Recover(); err != nil {
			return nil, err
		}
		cycles := uint64(ctl.Now() - before)
		tab.AddRow(
			fmt.Sprintf("%d", blocks),
			fmt.Sprintf("%d", ctl.Counters().Get("recovery.nvm_reads")),
			fmt.Sprintf("%d", cycles),
			fmt.Sprintf("%.3f", float64(cycles)/3200),
		)
	}
	return tab, nil
}

// StashPressure sweeps ORAM utilization and reports stash occupancy —
// the experiment behind the paper's 50% utilization choice ("to
// minimize the possibility of stash overflow", §5.1). Occupancy is the
// steady-state peak over a random workload on the functional PS-ORAM
// controller.
func StashPressure() (*stats.Table, error) {
	tab := stats.NewTable("Stash pressure vs ORAM utilization (PS-ORAM, L=6, 2000 accesses)",
		"Utilization", "Blocks", "Stash peak", "Pending peak", "Verdict")
	const levels = 6
	slots := oram.NewTree(levels, 4).Slots()
	for _, util := range []float64{0.3, 0.5, 0.7, 0.9} {
		blocks := uint64(float64(slots) * util)
		cfg := config.Default()
		cfg.StashEntries = 600
		cfg.TempPosMapSize = 400
		ctl, err := core.New(config.SchemePSORAM, cfg, core.Options{NumBlocks: blocks, Levels: levels})
		if err != nil {
			return nil, err
		}
		rngState := uint64(13)
		next := func(n int) int {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			return int((rngState >> 33) % uint64(n))
		}
		peak, pendPeak := 0, 0
		overflowed := false
		for i := 0; i < 2000; i++ {
			if _, err := ctl.Access(oram.OpRead, oram.Addr(next(int(blocks))), nil); err != nil {
				overflowed = true
				break
			}
			if n := ctl.ORAM.Stash.Len(); n > peak {
				peak = n
			}
			if n := ctl.Temp.Len(); n > pendPeak {
				pendPeak = n
			}
		}
		verdict := "stable"
		if overflowed {
			verdict = "OVERFLOWS"
		} else if peak > 3*ctl.ORAM.Tree.PathBlocks() {
			verdict = "pressured"
		}
		tab.AddRow(fmt.Sprintf("%.0f%%", util*100), fmt.Sprintf("%d", blocks),
			fmt.Sprintf("%d", peak), fmt.Sprintf("%d", pendPeak), verdict)
	}
	return tab, nil
}

// Ring compares the two tree ORAM protocols at functional scale: the
// NVM traffic of Path ORAM (PS-ORAM) vs Ring ORAM (Ring-PS) on an
// identical workload, plus the journal/eviction statistics of the Ring
// extension. Ring's headline: ~(L+1) reads per access instead of
// Z·(L+1).
func Ring() (*stats.Table, error) {
	const (
		blocks   = 200
		accesses = 400
	)
	tab := stats.NewTable("Path ORAM vs Ring ORAM (functional scale, identical workload)",
		"Protocol", "Reads/access", "Writes/access", "Evictions", "Crash consistent")

	// Path ORAM side.
	cfg := config.Default()
	cfg.StashEntries = 150
	pc, err := core.New(config.SchemePSORAM, cfg, core.Options{NumBlocks: blocks})
	if err != nil {
		return nil, err
	}
	rngState := uint64(5)
	next := func(n int) int {
		rngState = rngState*6364136223846793005 + 1442695040888963407
		return int((rngState >> 33) % uint64(n))
	}
	buf := make([]byte, cfg.BlockBytes)
	for i := 0; i < accesses; i++ {
		if _, err := pc.Access(oram.OpWrite, oram.Addr(next(blocks)), buf); err != nil {
			return nil, err
		}
	}
	pr := float64(pc.Mem.Counters().Get("nvm.reads")) / accesses
	pw := float64(pc.Mem.Counters().Get("nvm.writes")) / accesses
	tab.AddRow("Path ORAM (PS-ORAM)", fmt.Sprintf("%.1f", pr), fmt.Sprintf("%.1f", pw),
		fmt.Sprintf("%d", accesses), "yes")

	// Ring ORAM side.
	rc, err := ringoram.New(ringoram.Params{
		Levels: 7, Z: 4, S: 4, A: 3,
		BlockBytes: cfg.BlockBytes, StashEntries: 150, NumBlocks: blocks,
		Seed: 5, Persist: true, JournalEntries: 96,
	}, cfg)
	if err != nil {
		return nil, err
	}
	rngState = 5
	for i := 0; i < accesses; i++ {
		if _, err := rc.Access(oram.OpWrite, oram.Addr(next(blocks)), buf); err != nil {
			return nil, err
		}
	}
	rr := float64(rc.Mem.Counters().Get("nvm.reads")) / accesses
	rw := float64(rc.Mem.Counters().Get("nvm.writes")) / accesses
	tab.AddRow("Ring ORAM (Ring-PS, ext)", fmt.Sprintf("%.1f", rr), fmt.Sprintf("%.1f", rw),
		fmt.Sprintf("%d", rc.Counter("ring.evictions")), "yes")
	return tab, nil
}

// CrashMatrix runs the §3.3 crash-recoverability study: for each scheme,
// inject a crash at every swept protocol point, recover, and report how
// many points recovered consistently.
func CrashMatrix() (*stats.Table, error) {
	cfg := config.Default()
	cfg.StashEntries = 150
	cfg.TempPosMapSize = 16
	cfg.WriteBufferEntries = 16
	cfg.OnChipPosMapBytes = 4 * 64 * 8
	r := crash.Runner{Cfg: cfg, Blocks: 80, Levels: 5}
	w := crash.Workload{NumBlocks: 80, Accesses: 50, Seed: 11, WriteRatio: 0.5}
	pts := crash.SweepPoints(50, 5)
	tab := stats.NewTable("Crash recoverability (injected power failures, recovered state checked value-by-value)",
		"Scheme", "Crash points fired", "Consistent recoveries", "Verdict")
	for _, s := range []config.Scheme{
		config.SchemeBaseline, config.SchemeFullNVM, config.SchemeNaivePSORAM,
		config.SchemePSORAM, config.SchemeRcrBaseline, config.SchemeRcrPSORAM,
		config.SchemeEADRORAM,
	} {
		res, err := r.Sweep(s, w, pts)
		if err != nil {
			return nil, err
		}
		verdict := "CRASH CONSISTENT"
		if res.Consistent < res.Fired {
			verdict = "CORRUPTS"
		}
		tab.AddRow(s.String(), fmt.Sprintf("%d", res.Fired), fmt.Sprintf("%d", res.Consistent), verdict)
	}
	// The Ring ORAM extension rows.
	for _, persist := range []bool{false, true} {
		fired, consistent, err := ringCrashSweep(persist)
		if err != nil {
			return nil, err
		}
		name := "Ring-Baseline"
		if persist {
			name = "Ring-PS (ext)"
		}
		verdict := "CRASH CONSISTENT"
		if consistent < fired {
			verdict = "CORRUPTS"
		}
		tab.AddRow(name, fmt.Sprintf("%d", fired), fmt.Sprintf("%d", consistent), verdict)
	}
	return tab, nil
}

// ringCrashSweep runs the Ring ORAM crash sweep (see internal/ringoram)
// and reports (fired, consistent).
func ringCrashSweep(persist bool) (int, int, error) {
	p := ringoram.Params{
		Levels: 5, Z: 4, S: 4, A: 3,
		BlockBytes: 64, StashEntries: 150, NumBlocks: 80,
		Seed: 11, Persist: persist, JournalEntries: 24,
	}
	var points []ringoram.CrashPoint
	for _, acc := range []uint64{0, 10, 25, 40} {
		for _, phase := range []string{"read", "evict", "end"} {
			points = append(points, ringoram.CrashPoint{Access: acc, Phase: phase})
		}
	}
	fired, consistent := 0, 0
	for _, pt := range points {
		ctl, err := ringoram.New(p, config.Default())
		if err != nil {
			return 0, 0, err
		}
		durable := make(map[oram.Addr][]byte)
		history := make(map[oram.Addr][][]byte)
		zero := make([]byte, p.BlockBytes)
		for a := oram.Addr(0); uint64(a) < p.NumBlocks; a++ {
			durable[a] = zero
			history[a] = [][]byte{zero}
		}
		ctl.OnDurable = func(a oram.Addr, v []byte) { durable[a] = v }
		pt := pt
		ctl.CrashAt = func(cp ringoram.CrashPoint) bool { return cp == pt }
		rngState := uint64(9)
		crashed := false
		for i := 0; i < 55; i++ {
			rngState = rngState*6364136223846793005 + 1442695040888963407
			addr := oram.Addr((rngState >> 33) % p.NumBlocks)
			v := make([]byte, p.BlockBytes)
			copy(v, fmt.Sprintf("a%d.v%d", addr, i))
			history[addr] = append(history[addr], v)
			_, err := ctl.Access(oram.OpWrite, addr, v)
			if err == ringoram.ErrCrashed {
				crashed = true
				break
			}
			if err != nil {
				return 0, 0, err
			}
		}
		if !crashed {
			continue
		}
		fired++
		if err := ctl.Recover(); err != nil {
			return 0, 0, err
		}
		ok := true
		for a := oram.Addr(0); uint64(a) < p.NumBlocks; a++ {
			got, err := ctl.Peek(a)
			if err != nil {
				ok = false
				break
			}
			if persist {
				if !bytesEqual(got, durable[a]) {
					ok = false
					break
				}
			} else {
				known := false
				for _, v := range history[a] {
					if bytesEqual(got, v) {
						known = true
						break
					}
				}
				if !known {
					ok = false
					break
				}
			}
		}
		if ok {
			consistent++
		}
	}
	return fired, consistent, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
