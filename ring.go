package psoram

import (
	"errors"

	"repro/internal/config"
	"repro/internal/oram"
	"repro/internal/ringoram"
)

// RingStoreOptions configures a Ring ORAM store (the repository's
// "general ORAM protocols" extension: PS-ORAM's crash-consistency
// principles applied to Ring ORAM).
type RingStoreOptions struct {
	// NumBlocks is the logical block count (required).
	NumBlocks uint64
	// Persist selects the crash-consistent Ring-PS mode (default true
	// when constructed via NewRingStore with Persist unset is false —
	// set explicitly).
	Persist bool
	// Z, S, A are Ring ORAM's bucket geometry and eviction rate; zero
	// values select Z=4, S=4, A=3.
	Z, S, A int
	// JournalEntries bounds the persistent stash journal (default 96,
	// matching C_TPos).
	JournalEntries int
	// Config supplies block size, stash size, and NVM parameters.
	Config *Config
	Seed   uint64
}

// RingStore is a Ring ORAM block store, optionally crash consistent.
type RingStore struct {
	ctl *ringoram.Controller
}

// ErrRingCrashed reports an injected power failure in a RingStore.
var ErrRingCrashed = ringoram.ErrCrashed

// NewRingStore builds a Ring ORAM store with NumBlocks zero-initialized
// blocks.
func NewRingStore(opts RingStoreOptions) (*RingStore, error) {
	if opts.NumBlocks == 0 {
		return nil, errors.New("psoram: RingStoreOptions.NumBlocks is required")
	}
	cfg := config.Default()
	if opts.Config != nil {
		cfg = *opts.Config
	}
	z, s, a := opts.Z, opts.S, opts.A
	if z == 0 {
		z = 4
	}
	if s == 0 {
		s = 4
	}
	if a == 0 {
		a = 3
	}
	j := opts.JournalEntries
	if j == 0 {
		j = 96
	}
	levels := 3
	for {
		t := oram.NewTree(levels, z)
		if t.Slots()/2 >= opts.NumBlocks {
			break
		}
		levels++
	}
	stash := cfg.StashEntries
	if stash <= z*(levels+1) {
		stash = z*(levels+1)*3 + 8
	}
	ctl, err := ringoram.New(ringoram.Params{
		Levels:         levels,
		Z:              z,
		S:              s,
		A:              a,
		BlockBytes:     cfg.BlockBytes,
		StashEntries:   stash,
		NumBlocks:      opts.NumBlocks,
		Seed:           cfg.Seed ^ opts.Seed,
		Persist:        opts.Persist,
		JournalEntries: j,
	}, cfg)
	if err != nil {
		return nil, err
	}
	return &RingStore{ctl: ctl}, nil
}

// BlockSize returns the payload size in bytes.
func (s *RingStore) BlockSize() int { return s.ctl.P.BlockBytes }

// NumBlocks returns the logical block count.
func (s *RingStore) NumBlocks() uint64 { return s.ctl.P.NumBlocks }

// Read performs one Ring ORAM access returning the block's value.
func (s *RingStore) Read(addr uint64) ([]byte, error) {
	return s.ctl.Access(oram.OpRead, oram.Addr(addr), nil)
}

// Write performs one Ring ORAM access replacing the block's value.
func (s *RingStore) Write(addr uint64, data []byte) error {
	_, err := s.ctl.Access(oram.OpWrite, oram.Addr(addr), data)
	return err
}

// CrashNow simulates a power failure between accesses.
func (s *RingStore) CrashNow() { s.ctl.CrashNow() }

// Recover restores the store after a crash (journal replay in Persist
// mode).
func (s *RingStore) Recover() error { return s.ctl.Recover() }

// Accesses returns the completed access count.
func (s *RingStore) Accesses() uint64 { return s.ctl.Accesses() }

// Counter exposes the protocol counters ("ring.evictions",
// "ring.journal_appends", "ring.early_reshuffles", ...) and the memory
// controller's ("nvm.reads", "nvm.writes", "wpq.batches", ...).
func (s *RingStore) Counter(name string) int64 {
	if v := s.ctl.Counter(name); v != 0 {
		return v
	}
	return s.ctl.Mem.Counters().Get(name)
}

// OnDurable registers the durability observer (see Store.OnDurable).
func (s *RingStore) OnDurable(f func(addr uint64, value []byte)) {
	if f == nil {
		s.ctl.OnDurable = nil
		return
	}
	s.ctl.OnDurable = func(a oram.Addr, v []byte) { f(uint64(a), v) }
}
