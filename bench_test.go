package psoram

// The benchmark harness: one benchmark per table and figure of the
// paper, plus per-access microbenchmarks and the ablations DESIGN.md
// calls out. `go test -bench . -benchmem` runs everything at a reduced
// scale; cmd/psoram-bench prints the full tables.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/oram"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchOptions keeps per-iteration experiment cost manageable.
func benchOptions() report.Options {
	o := report.Default()
	o.Accesses = 400
	o.Levels = 10
	o.Workloads = trace.Table4()[:3]
	return o
}

// --- Tables ---

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if report.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if report.Table2().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// --- Figures ---

func BenchmarkFigure5a(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := o.Figure5a(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5b(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := o.Figure5b(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6a(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := o.Figure6(false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6b(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := o.Figure6(true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := o.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkORAMCost(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		if _, err := o.ORAMCost(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCrashMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := report.CrashMatrix(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-access microbenchmarks: the functional controller ---

func benchStoreAccess(b *testing.B, scheme Scheme) {
	cfg := config.Default()
	cfg.StashEntries = 150
	s, err := New(256, WithScheme(scheme), WithConfig(cfg))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, s.BlockSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i % 256)
		if i%2 == 0 {
			if err := s.Write(addr, buf); err != nil {
				b.Fatal(err)
			}
		} else if _, err := s.Read(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreAccess measures the functional psoram.Store with the
// same keyspace and tree shape as the serving pool's throughput
// benchmark (512 blocks, 8 levels, PS-ORAM) — the gap between this and
// BenchmarkPoolThroughput is the serving layer's own overhead (queue,
// coalescing, reply, ownership copy), not protocol cost.
func BenchmarkStoreAccess(b *testing.B) {
	s, err := New(512, WithScheme(PSORAM), WithLevels(8), WithRNGSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, s.BlockSize())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := (uint64(i) * 2654435761) % 512
		if i%2 == 0 {
			if err := s.Write(addr, buf); err != nil {
				b.Fatal(err)
			}
		} else if _, err := s.Read(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFileStoreAccess is BenchmarkStoreAccess over the durable
// file backend: identical keyspace, tree shape, and scheme, but the
// accesses end with the persist barrier (chunk writes + fsyncs +
// version flip). group=1 is the per-access serial barrier — the gap to
// BenchmarkStoreAccess IS the price of crash consistency on this
// machine's storage stack. group=4/16 amortize that barrier across a
// commit group (one barrier per G accesses, run on the background
// persist worker); the trailing FlushCommits keeps the op count honest.
// `make bench-store` pins all three into BENCH_store.json.
func BenchmarkFileStoreAccess(b *testing.B) {
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("group=%d", g), func(b *testing.B) {
			s, err := New(512, WithScheme(PSORAM), WithLevels(8), WithRNGSeed(1),
				WithStorePath(b.TempDir()+"/store"), WithGroupCommit(g, 0))
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			buf := make([]byte, s.BlockSize())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				addr := (uint64(i) * 2654435761) % 512
				if i%2 == 0 {
					if err := s.Write(addr, buf); err != nil {
						b.Fatal(err)
					}
				} else if _, err := s.Read(addr); err != nil {
					b.Fatal(err)
				}
			}
			if err := s.FlushCommits(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func BenchmarkAccessBaseline(b *testing.B)    { benchStoreAccess(b, Baseline) }
func BenchmarkAccessPSORAM(b *testing.B)      { benchStoreAccess(b, PSORAM) }
func BenchmarkAccessNaivePSORAM(b *testing.B) { benchStoreAccess(b, NaivePSORAM) }
func BenchmarkAccessRcrPSORAM(b *testing.B)   { benchStoreAccess(b, RcrPSORAM) }

// BenchmarkAccessRingPS measures the Ring ORAM extension's per-access
// cost in crash-consistent mode.
func BenchmarkAccessRingPS(b *testing.B) {
	s, err := NewRingStore(RingStoreOptions{NumBlocks: 256, Persist: true})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, s.BlockSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i % 256)
		if i%2 == 0 {
			if err := s.Write(addr, buf); err != nil {
				b.Fatal(err)
			}
		} else if _, err := s.Read(addr); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Per-access microbenchmarks: the timing simulator ---

func benchSimAccess(b *testing.B, scheme Scheme) {
	cfg := config.Default()
	sys, err := sim.NewSystem(scheme, cfg, 14)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Serve(uint64(i)*2654435761, i%3 == 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimBaseline(b *testing.B) { benchSimAccess(b, Baseline) }
func BenchmarkSimPSORAM(b *testing.B)   { benchSimAccess(b, PSORAM) }
func BenchmarkSimRcrPSORAM(b *testing.B) {
	benchSimAccess(b, RcrPSORAM)
}

// --- Ablations (DESIGN.md §6) ---

// BenchmarkAblationWPQ compares the one-batch eviction (96-entry WPQs)
// against the ordered multi-batch eviction (4-entry WPQs). The report
// output is the simulated slowdown; the benchmark measures harness cost.
func BenchmarkAblationWPQ(b *testing.B) {
	for _, entries := range []int{4, 16, 96} {
		entries := entries
		b.Run(fmt.Sprintf("wpq%d", entries), func(b *testing.B) {
			cfg := config.Default()
			cfg.StashEntries = 150
			cfg.DataWPQEntries = entries
			cfg.PosMapWPQEntries = entries
			ctl, err := core.New(config.SchemePSORAM, cfg, core.Options{NumBlocks: 256, Levels: 7})
			if err != nil {
				b.Fatal(err)
			}
			buf := make([]byte, cfg.BlockBytes)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctl.Access(oram.OpWrite, oram.Addr(i%256), buf); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ctl.Now())/float64(ctl.Accesses()), "simcycles/access")
		})
	}
}

// BenchmarkAblationZ sweeps the bucket size: larger Z shortens the tree
// but widens every path.
func BenchmarkAblationZ(b *testing.B) {
	for _, z := range []int{2, 4, 8} {
		z := z
		b.Run(fmt.Sprintf("z%d", z), func(b *testing.B) {
			cfg := config.Default()
			cfg.Z = z
			cfg.StashEntries = 400
			w, _ := trace.ByName("464.h264ref")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Simulate(context.Background(), sim.Request{Scheme: config.SchemePSORAM, Config: cfg, Workload: w, N: 300, Levels: 12})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles)/float64(res.Accesses), "simcycles/access")
			}
		})
	}
}

// BenchmarkAblationDirtyTracking is the paper's PS-ORAM vs Naïve
// comparison at several tree heights: the benefit of tracking dirty
// PosMap entries grows with L (the Naïve scheme flushes Z*(L+1) entries
// per access).
func BenchmarkAblationDirtyTracking(b *testing.B) {
	for _, levels := range []int{10, 14, 18} {
		levels := levels
		for _, scheme := range []config.Scheme{config.SchemePSORAM, config.SchemeNaivePSORAM} {
			scheme := scheme
			b.Run(fmt.Sprintf("L%d/%v", levels, scheme), func(b *testing.B) {
				cfg := config.Default()
				w, _ := trace.ByName("464.h264ref")
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					res, err := sim.Simulate(context.Background(), sim.Request{Scheme: scheme, Config: cfg, Workload: w, N: 300, Levels: levels})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(res.Cycles)/float64(res.Accesses), "simcycles/access")
				}
			})
		}
	}
}

// BenchmarkAblationChannels sweeps memory channels for PS-ORAM.
func BenchmarkAblationChannels(b *testing.B) {
	for _, ch := range []int{1, 2, 4} {
		ch := ch
		b.Run(fmt.Sprintf("ch%d", ch), func(b *testing.B) {
			cfg := config.Default()
			cfg.Channels = ch
			w, _ := trace.ByName("401.bzip2")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Simulate(context.Background(), sim.Request{Scheme: config.SchemePSORAM, Config: cfg, Workload: w, N: 300, Levels: 14})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles)/float64(res.Accesses), "simcycles/access")
			}
		})
	}
}

// BenchmarkAblationTreeTopCache sweeps the §4.5 hybrid-memory extension:
// top-K tree levels mirrored in DRAM (write-through, crash-safe).
func BenchmarkAblationTreeTopCache(b *testing.B) {
	for _, k := range []int{0, 4, 8} {
		k := k
		b.Run(fmt.Sprintf("top%d", k), func(b *testing.B) {
			cfg := config.Default()
			cfg.TreeTopCacheLevels = k
			w, _ := trace.ByName("464.h264ref")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Simulate(context.Background(), sim.Request{Scheme: config.SchemePSORAM, Config: cfg, Workload: w, N: 300, Levels: 14})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Cycles)/float64(res.Accesses), "simcycles/access")
			}
		})
	}
}

// BenchmarkCrashRecoverySweep measures the crash-inject/recover/verify
// loop itself.
func BenchmarkCrashRecoverySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := VerifyCrashConsistency(PSORAM, 30, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.Consistent != res.Fired {
			b.Fatalf("PS-ORAM inconsistent: %d/%d", res.Consistent, res.Fired)
		}
	}
}

// BenchmarkAccessPSORAMIntegrity prices the Merkle verification and
// crash-consistent root update per access.
func BenchmarkAccessPSORAMIntegrity(b *testing.B) {
	cfg := config.Default()
	cfg.StashEntries = 150
	cfg.Integrity = true
	ctl, err := core.New(config.SchemePSORAM, cfg, core.Options{NumBlocks: 256, Levels: 7})
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, cfg.BlockBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctl.Access(oram.OpWrite, oram.Addr(i%256), buf); err != nil {
			b.Fatal(err)
		}
	}
}
