// Quickstart: build a crash-consistent oblivious block store, write and
// read blocks, survive a power failure.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A PS-ORAM store with 1024 logical blocks (64B each, the paper's
	// cache-line-sized blocks).
	store, err := psoram.New(1024,
		psoram.WithScheme(psoram.PSORAM),
		psoram.WithRNGSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store: %d blocks x %dB, scheme %v\n",
		store.NumBlocks(), store.BlockSize(), store.Scheme())

	// Write a few blocks. Every Write is a full oblivious access: a
	// random path read, re-encryption, and an atomic WPQ write-back.
	for i := 0; i < 8; i++ {
		data := make([]byte, store.BlockSize())
		copy(data, fmt.Sprintf("secret record #%d", i))
		if err := store.Write(uint64(i*100), data); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("wrote 8 blocks in %d ORAM accesses (%d simulated cycles)\n",
		store.Accesses(), store.Cycles())

	// Power failure. The volatile stash, temporary PosMap and write
	// buffer are gone; the WPQs drained.
	if err := store.CrashNow(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("simulated power failure")

	// Recovery reloads the on-chip position map from its durable copy.
	if err := store.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("recovered")

	// Every write survived: PS-ORAM's backup blocks and atomic
	// data+metadata write-backs guarantee it.
	for i := 0; i < 8; i++ {
		got, err := store.Read(uint64(i * 100))
		if err != nil {
			log.Fatalf("block %d lost: %v", i*100, err)
		}
		fmt.Printf("block %4d: %q\n", i*100, trim(got))
	}
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
