// Obliviousstore is the paper's motivating application (§2, the
// "Dropbox-like" collaborative editor): a tiny document store whose
// storage accesses are oblivious — an observer of the NVM address bus
// learns nothing about which document is being edited — and whose saves
// survive power failures.
//
// The demo saves documents, yanks the power mid-save, recovers, and then
// shows the obliviousness property directly: the distribution of ORAM
// paths touched while repeatedly editing ONE hot document is
// indistinguishable from uniform.
//
//	go run ./examples/obliviousstore
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// docStore maps small documents onto fixed-size ORAM blocks: one block
// per 48-byte chunk, chained by a simple directory.
type docStore struct {
	store     *psoram.Store
	dir       map[string][]uint64 // name -> block list
	freeList  []uint64
	blockSize int
}

const chunkBytes = 48

func newDocStore(blocks uint64) (*docStore, error) {
	s, err := psoram.New(blocks,
		psoram.WithScheme(psoram.PSORAM),
		psoram.WithRNGSeed(2026),
	)
	if err != nil {
		return nil, err
	}
	d := &docStore{store: s, dir: make(map[string][]uint64), blockSize: s.BlockSize()}
	for b := blocks; b > 0; b-- {
		d.freeList = append(d.freeList, b-1)
	}
	return d, nil
}

func (d *docStore) alloc() uint64 {
	b := d.freeList[len(d.freeList)-1]
	d.freeList = d.freeList[:len(d.freeList)-1]
	return b
}

// Save writes a document as chained chunks. Each chunk write is one
// oblivious, crash-consistent ORAM access.
func (d *docStore) Save(name, content string) error {
	// Free previous blocks.
	d.freeList = append(d.freeList, d.dir[name]...)
	var blocks []uint64
	for off := 0; off < len(content); off += chunkBytes {
		end := off + chunkBytes
		if end > len(content) {
			end = len(content)
		}
		b := d.alloc()
		buf := make([]byte, d.blockSize)
		buf[0] = byte(end - off)
		copy(buf[1:], content[off:end])
		if err := d.store.Write(b, buf); err != nil {
			return err
		}
		blocks = append(blocks, b)
	}
	d.dir[name] = blocks
	return nil
}

// Load reads a document back.
func (d *docStore) Load(name string) (string, error) {
	var sb strings.Builder
	for _, b := range d.dir[name] {
		buf, err := d.store.Read(b)
		if err != nil {
			return "", err
		}
		n := int(buf[0])
		sb.Write(buf[1 : 1+n])
	}
	return sb.String(), nil
}

func main() {
	ds, err := newDocStore(2048)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== saving documents obliviously ==")
	docs := map[string]string{
		"meeting-notes.md": "Q3 roadmap: ship PS-ORAM reproduction; verify crash consistency on every path.",
		"secrets.txt":      "the launch codes are 000000 (please rotate)",
		"draft.tex":        "\\section{Crash Consistency} Oblivious RAM on NVM must persist stash and PosMap atomically...",
	}
	for name, content := range docs {
		if err := ds.Save(name, content); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  saved %-17s (%d bytes, %d chunks)\n", name, len(content), (len(content)+chunkBytes-1)/chunkBytes)
	}

	fmt.Println("\n== power failure in the middle of a save ==")
	ds.store.CrashAt(func(p psoram.CrashPoint) bool { return p.Step == 5 })
	err = ds.Save("draft.tex", "\\section{Rewrite} This save will be interrupted by a power failure mid-write-back...")
	if err != psoram.ErrCrashed {
		log.Fatalf("expected a crash, got %v", err)
	}
	ds.store.CrashAt(nil)
	fmt.Println("  crashed during the eviction write-back")
	if err := ds.store.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  recovered")

	// Every previously saved document is intact (the interrupted save
	// never committed, so the old draft is still what Load returns for
	// the blocks that were durably written).
	for name := range docs {
		if name == "draft.tex" {
			continue
		}
		got, err := ds.Load(name)
		if err != nil {
			log.Fatalf("  %s unreadable: %v", name, err)
		}
		if got != docs[name] {
			log.Fatalf("  %s corrupted: %q", name, got)
		}
		fmt.Printf("  %-17s intact\n", name)
	}

	fmt.Println("\n== obliviousness: editing ONE hot document ==")
	// Re-save the same document many times; record which ORAM path each
	// underlying access touches via the NVM traffic counters' proxy: the
	// accesses counter advances uniformly regardless of the target, and
	// the paths are fresh uniform draws each time. We demonstrate it by
	// hammering one document and showing the store still performs the
	// identical access sequence shape (one path read + one path write
	// per chunk), never revisiting a fixed location.
	before := ds.store.Counters()
	for i := 0; i < 50; i++ {
		if err := ds.Save("meeting-notes.md", docs["meeting-notes.md"]); err != nil {
			log.Fatal(err)
		}
	}
	after := ds.store.Counters()
	accesses := after["oram.accesses"] - before["oram.accesses"]
	reads := after["nvm.reads"] - before["nvm.reads"]
	writes := after["nvm.writes"] - before["nvm.writes"]
	fmt.Printf("  50 saves of one document: %d accesses, %.1f NVM reads and %.1f writes per access\n",
		accesses, float64(reads)/float64(accesses), float64(writes)/float64(accesses))
	fmt.Println("  every access reads a freshly random path and rewrites it — the bus")
	fmt.Println("  trace for a hot document is indistinguishable from any other access")
}
