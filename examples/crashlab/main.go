// Crashlab mechanizes the paper's §3.3 case studies: it crashes the
// baseline (non-persistent) ORAM and PS-ORAM at the same protocol points
// and shows, value by value, that the baseline loses data while PS-ORAM
// recovers every durable write.
//
//	go run ./examples/crashlab
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	fmt.Println("=== The paper's Section 3.3 case studies, mechanized ===")
	fmt.Println()
	cases := []struct {
		name  string
		step  int
		sub   int
		story string
	}{
		{"Case 1", 3, 2, "crash during step 3 (path load): the PosMap was remapped, the stash is mid-fill"},
		{"Case 2", 4, -1, "crash at step 4 (stash update): path loaded, nothing written back yet"},
		{"Case 3", 5, 7, "crash during step 5 (path write-back): the eviction is half-done"},
		{"between", 6, -1, "crash after the access completes, before the next one"},
	}
	for _, c := range cases {
		fmt.Printf("--- %s: %s\n", c.name, c.story)
		for _, scheme := range []psoram.Scheme{psoram.Baseline, psoram.PSORAM} {
			lost, total := runCase(scheme, c.step, c.sub)
			verdict := "all blocks recovered consistently"
			if lost > 0 {
				verdict = fmt.Sprintf("%d of %d blocks LOST or stale", lost, total)
			}
			fmt.Printf("    %-10v -> %s\n", scheme, verdict)
		}
		fmt.Println()
	}
	fmt.Println("PS-ORAM's temporary PosMap defers metadata commits, its backup")
	fmt.Println("blocks keep a reachable copy of every accessed block, and the")
	fmt.Println("WPQ batch makes data+metadata write-back atomic — so every case")
	fmt.Println("recovers. The baseline has none of that, and corrupts.")
}

// runCase writes versioned values, crashes at the chosen point of a
// mid-run access, recovers, and counts blocks whose recovered value is
// not the latest durable one.
func runCase(scheme psoram.Scheme, step, sub int) (lost, total int) {
	const blocks = 64
	store, err := psoram.New(blocks,
		psoram.WithScheme(scheme),
		psoram.WithRNGSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}
	// Track what became durable (the store reports durability events).
	durable := make(map[uint64][]byte)
	store.OnDurable(func(addr uint64, value []byte) { durable[addr] = value })

	// Arm the crash for access #20 at the chosen protocol point.
	store.CrashAt(func(p psoram.CrashPoint) bool {
		return p.Access == 20 && p.Step == step && (sub == -1 || p.Sub == sub)
	})

	version := 0
	for i := 0; i < 40; i++ {
		addr := uint64((i * 13) % blocks)
		version++
		data := make([]byte, store.BlockSize())
		copy(data, fmt.Sprintf("a%d v%d", addr, version))
		err := store.Write(addr, data)
		if err == psoram.ErrCrashed {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	store.CrashAt(nil)
	if err := store.Recover(); err != nil {
		log.Fatal(err)
	}
	// Check every address against its latest durable value.
	for a := uint64(0); a < blocks; a++ {
		want := durable[a]
		if want == nil {
			want = make([]byte, store.BlockSize())
		}
		got, err := store.Read(a)
		if err != nil || string(got) != string(want) {
			lost++
		}
	}
	return lost, blocks
}
