// Specsweep runs a miniature of the paper's evaluation: a few Table 4
// workloads across the evaluated schemes on the timing simulator, and
// prints normalized execution times (a small Figure 5) plus traffic.
//
//	go run ./examples/specsweep
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const (
		accesses = 1500
		levels   = 14
	)
	workloads := []string{"403.gcc", "429.mcf", "458.sjeng", "470.lbm"}
	schemes := []psoram.Scheme{
		psoram.Baseline, psoram.FullNVM, psoram.NaivePSORAM, psoram.PSORAM,
	}
	cfg := psoram.DefaultConfig()

	fmt.Printf("mini Figure 5(a): normalized execution time (L=%d, %d accesses)\n\n", levels, accesses)
	fmt.Printf("%-12s", "workload")
	for _, s := range schemes {
		fmt.Printf("%15s", s)
	}
	fmt.Println()
	for _, w := range workloads {
		base, err := psoram.Simulate(psoram.Baseline, cfg, w, accesses, levels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", w)
		for _, s := range schemes {
			res, err := psoram.Simulate(s, cfg, w, accesses, levels)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%15.3f", res.Slowdown(base))
		}
		fmt.Println()
	}

	fmt.Println("\nper-scheme traffic and protocol statistics (429.mcf):")
	fmt.Printf("%-15s %12s %12s %14s %12s\n", "scheme", "reads/acc", "writes/acc", "dirty-entries", "wear max/min")
	for _, s := range schemes {
		res, err := psoram.Simulate(s, cfg, "429.mcf", accesses, levels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s %12.1f %12.1f %14.2f %12.2f\n",
			s.String(),
			float64(res.Reads)/float64(res.Accesses),
			float64(res.Writes)/float64(res.Accesses),
			float64(res.DirtyEntries)/float64(res.Accesses),
			res.WearImbalance)
	}
	fmt.Println("\nPS-ORAM adds ~1 dirty PosMap entry per access over Baseline —")
	fmt.Println("that is the entire persistence bill (the paper's headline result).")
}
