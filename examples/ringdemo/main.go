// Ringdemo compares the two tree ORAMs side by side: Path ORAM reads
// and rewrites Z·(L+1) blocks per access, Ring ORAM reads one block per
// bucket and amortizes its write-backs — and with the repository's
// Ring-PS extension both are crash consistent.
//
//	go run ./examples/ringdemo
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const blocks = 500
	path, err := psoram.New(blocks, psoram.WithScheme(psoram.PSORAM))
	if err != nil {
		log.Fatal(err)
	}
	ring, err := psoram.NewRingStore(psoram.RingStoreOptions{NumBlocks: blocks, Persist: true})
	if err != nil {
		log.Fatal(err)
	}

	// Identical workload on both.
	const n = 300
	runPath := func() (reads, writes float64) {
		for i := 0; i < n; i++ {
			addr := uint64(i*37) % blocks
			if i%2 == 0 {
				data := make([]byte, path.BlockSize())
				copy(data, fmt.Sprintf("v%d", i))
				if err := path.Write(addr, data); err != nil {
					log.Fatal(err)
				}
			} else if _, err := path.Read(addr); err != nil {
				log.Fatal(err)
			}
		}
		c := path.Counters()
		return float64(c["nvm.reads"]) / n, float64(c["nvm.writes"]) / n
	}
	runRing := func() (reads, writes float64) {
		for i := 0; i < n; i++ {
			addr := uint64(i*37) % blocks
			if i%2 == 0 {
				data := make([]byte, ring.BlockSize())
				copy(data, fmt.Sprintf("v%d", i))
				if err := ring.Write(addr, data); err != nil {
					log.Fatal(err)
				}
			} else if _, err := ring.Read(addr); err != nil {
				log.Fatal(err)
			}
		}
		return float64(ring.Counter("nvm.reads")) / n, float64(ring.Counter("nvm.writes")) / n
	}
	pr, pw := runPath()
	rr, rw := runRing()

	fmt.Println("== Path ORAM (PS-ORAM) vs Ring ORAM (Ring-PS) on the same workload ==")
	fmt.Printf("Path ORAM:  %5.1f NVM reads/access, %5.1f writes/access (full path both ways)\n", pr, pw)
	fmt.Printf("Ring ORAM:  %5.1f NVM reads/access, %5.1f writes/access (one block per bucket,\n", rr, rw)
	fmt.Printf("            write-backs amortized: %d scheduled evictions, %d early reshuffles,\n",
		ring.Counter("ring.evictions"), ring.Counter("ring.early_reshuffles"))
	fmt.Printf("            %d journal appends over %d accesses)\n",
		ring.Counter("ring.journal_appends"), ring.Accesses())
	fmt.Println()

	// Crash both mid-run; both recover their durable state.
	pdata := make([]byte, path.BlockSize())
	copy(pdata, "path durable")
	rdata := make([]byte, ring.BlockSize())
	copy(rdata, "ring durable")
	if err := path.Write(11, pdata); err != nil {
		log.Fatal(err)
	}
	if err := ring.Write(11, rdata); err != nil {
		log.Fatal(err)
	}
	if err := path.CrashNow(); err != nil {
		log.Fatal(err)
	}
	ring.CrashNow()
	if err := path.Recover(); err != nil {
		log.Fatal(err)
	}
	if err := ring.Recover(); err != nil {
		log.Fatal(err)
	}
	pv, err := path.Read(11)
	if err != nil {
		log.Fatal(err)
	}
	rv, err := ring.Read(11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== after simultaneous power failure and recovery ==")
	fmt.Printf("Path ORAM block 11: %q\n", trim(pv))
	fmt.Printf("Ring ORAM block 11: %q\n", trim(rv))
	fmt.Println("\nPS-ORAM's principles — deferred metadata commits, bounded persistent")
	fmt.Println("state, atomic WPQ batches — carry over to Ring ORAM's asymmetric")
	fmt.Println("schedule via the stash journal. \"General ORAM protocols\", demonstrated.")
}

func trim(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
