// Command psoram-crash is the crash-consistency torture tool: it sweeps
// injected power failures over a write-heavy workload for each scheme,
// runs recovery, checks every block against the durability oracle, and
// reports the verdicts (the §3.3 case studies, mechanized).
//
// Usage:
//
//	psoram-crash                      # all schemes, default sweep
//	psoram-crash -scheme PS-ORAM -accesses 100 -seeds 5 -v
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/config"
)

func main() {
	var (
		schemeName = flag.String("scheme", "", "single scheme to test (default: all)")
		accesses   = flag.Int("accesses", 60, "accesses per crash run")
		seeds      = flag.Int("seeds", 3, "number of workload seeds to sweep")
		verbose    = flag.Bool("v", false, "print each failing crash point")
	)
	flag.Parse()

	schemes := []psoram.Scheme{
		psoram.Baseline, psoram.FullNVM, psoram.FullNVMSTT,
		psoram.NaivePSORAM, psoram.PSORAM,
		psoram.RcrBaseline, psoram.RcrPSORAM, psoram.EADRORAM,
	}
	if *schemeName != "" {
		s, ok := schemeByName(*schemeName)
		if !ok {
			fmt.Fprintf(os.Stderr, "psoram-crash: unknown scheme %q\n", *schemeName)
			os.Exit(1)
		}
		schemes = []psoram.Scheme{s}
	}

	anyCorrupt := false
	fmt.Printf("%-14s %8s %12s %10s  %s\n", "scheme", "fired", "consistent", "corrupted", "verdict")
	for _, s := range schemes {
		fired, consistent := 0, 0
		var failures []string
		for seed := uint64(1); seed <= uint64(*seeds); seed++ {
			res, err := psoram.VerifyCrashConsistency(s, *accesses, seed)
			if err != nil {
				fmt.Fprintf(os.Stderr, "psoram-crash: %v: %v\n", s, err)
				os.Exit(1)
			}
			fired += res.Fired
			consistent += res.Consistent
			for _, f := range res.Failures {
				failures = append(failures, fmt.Sprintf("  seed %d, %v: %d violations (first: %v)",
					seed, f.Point, len(f.Violations), f.Violations[0]))
			}
		}
		verdict := "CRASH CONSISTENT"
		if consistent < fired {
			verdict = "CORRUPTS"
			if s.Persistent() {
				anyCorrupt = true
				verdict = "CORRUPTS (UNEXPECTED!)"
			}
		}
		fmt.Printf("%-14s %8d %12d %10d  %s\n", s, fired, consistent, fired-consistent, verdict)
		if *verbose {
			for _, f := range failures {
				fmt.Println(f)
			}
		}
	}
	if anyCorrupt {
		os.Exit(2)
	}
}

func schemeByName(name string) (psoram.Scheme, bool) {
	for _, s := range config.Schemes() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}
