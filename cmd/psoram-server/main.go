// Command psoram-server exposes the sharded serving pool over TCP — the
// network face of the "millions of users" story — and doubles as the
// open-loop load generator that grades it against an SLO.
//
// Modes:
//
//	psoram-server -listen :7333                    # serve (SIGTERM = graceful drain)
//	psoram-server -listen :7333 -store /data/oram  # durable shards, survives kill -9
//	psoram-server -load -addr host:7333 -rate 5000 -duration 10s -slo 5ms
//	psoram-server -load -addr host:7333 -check     # differential oracle over the wire
//	psoram-server -self -rate 2000 -duration 2s -check  # in-process server + load (smoke)
//	psoram-server -reshard 8 -addr host:7333       # admin: live re-stripe to 8 shards
//	psoram-server -listen :7333 -reshard 8         # serve; SIGHUP reshards to 8
//
// The serve mode answers SIGTERM/SIGINT with a graceful drain: the
// listener closes, every connection finishes its in-flight requests and
// flushes its replies, then the pool drains and (for -store) every
// shard runs its final persist barrier.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	psoram "repro"
	"repro/internal/config"
	"repro/internal/netserve"
	"repro/internal/oracle"
	"repro/internal/serve"
)

func main() {
	var (
		// Mode selection.
		load = flag.Bool("load", false, "run the open-loop load generator against -addr instead of serving")
		self = flag.Bool("self", false, "in-process smoke: start a server, run the load generator against it, exit")

		// Serve-mode flags.
		listen     = flag.String("listen", "127.0.0.1:7333", "address to serve on (\":0\" picks a free port)")
		shards     = flag.Int("shards", 4, "independent store shards (one goroutine each)")
		blocks     = flag.Uint64("blocks", 4096, "total logical blocks across the pool")
		levels     = flag.Int("levels", 0, "per-shard tree height (0 = derive from block count)")
		schemeName = flag.String("scheme", "PS-ORAM", "persistence scheme (see psoram-oracle -list)")
		seed       = flag.Uint64("seed", 1, "root seed (shards derive independent streams)")
		queue      = flag.Int("queue", 64, "per-shard queue depth (full queue = RETRY_AFTER frames)")
		batch      = flag.Int("batch", 8, "max requests coalesced into one protocol round")
		storeDir   = flag.String("store", "", "back every shard with a durable on-disk store under DIR")
		inflight   = flag.Int("inflight", 64, "per-connection in-flight request cap")
		retryAfter = flag.Duration("retry-after", time.Millisecond, "backoff hint in overload frames")
		crashEvery = flag.Int("crash-every", 0, "fire a simulated power failure every Nth crash point (0 = off)")
		reshardTo  = flag.Int("reshard", 0, "admin: with -addr, reshard the remote server to N shards and exit; when serving, SIGHUP reshards the live pool to N")
		cryptoW    = flag.Int("crypto-workers", 0, "per-shard seal fan-out workers (0/1 = inline serial sealing)")
		pipeline   = flag.Int("pipeline-depth", 0, "intra-shard pipelining depth (1 = strict serial protocol, 0 = default 4)")
		groupOps   = flag.Int("group-commit", 0, "batch each durable shard's persist barrier across up to N accesses (0/1 = serial per-access barrier)")
		groupDelay = flag.Duration("group-delay", 0, "max time an idle shard holds an open commit group (0 = small default; needs -group-commit > 1)")
		drainWait  = flag.Duration("drain", 30*time.Second, "graceful drain budget on SIGTERM")

		// Load-mode flags.
		addr       = flag.String("addr", "", "server address for -load (defaults to -listen)")
		conns      = flag.Int("conns", 8, "load generator connections")
		rate       = flag.Float64("rate", 1000, "offered load, requests/second (Poisson arrivals)")
		duration   = flag.Duration("duration", 5*time.Second, "load run length")
		writeRatio = flag.Float64("write-ratio", 0.5, "fraction of requests that are writes")
		slo        = flag.Duration("slo", 0, "latency SLO the report grades p99 against (0 = report only)")
		strictSLO  = flag.Bool("strict-slo", false, "exit non-zero when the SLO is missed")
		check      = flag.Bool("check", false, "differential oracle mode: striped sequential streams, every value diffed")
		jsonOut    = flag.Bool("json", false, "emit the load report as JSON")
	)
	flag.Parse()

	switch {
	case *reshardTo > 0 && *addr != "":
		// One-shot admin: drive the remote server's migration over the
		// wire and report the committed topology.
		c, err := netserve.Dial(*addr, netserve.ClientOptions{})
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		newShards, epoch, err := c.Reshard(context.Background(), *reshardTo)
		if err != nil {
			fatal(fmt.Errorf("reshard: %w", err))
		}
		fmt.Printf("psoram-server: resharded to %d shards (epoch %d)\n", newShards, epoch)
	case *self:
		pool, srv, ln := startServer(*listen, *shards, *blocks, *levels, *schemeName, *seed,
			*queue, *batch, *storeDir, *inflight, *retryAfter, *crashEvery, *cryptoW, *pipeline, *groupOps, *groupDelay)
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		ok := runLoad(ln.Addr().String(), *conns, *rate, *duration, *writeRatio, *slo, *strictSLO, *check, *jsonOut, *seed)
		shutdown(srv, pool, *drainWait)
		if err := <-serveDone; err != nil && err != netserve.ErrServerClosed {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	case *load:
		target := *addr
		if target == "" {
			target = *listen
		}
		if !runLoad(target, *conns, *rate, *duration, *writeRatio, *slo, *strictSLO, *check, *jsonOut, *seed) {
			os.Exit(1)
		}
	default:
		pool, srv, ln := startServer(*listen, *shards, *blocks, *levels, *schemeName, *seed,
			*queue, *batch, *storeDir, *inflight, *retryAfter, *crashEvery, *cryptoW, *pipeline, *groupOps, *groupDelay)
		fmt.Printf("psoram-server: serving %d blocks on %d shards (%s) at %s\n",
			*blocks, *shards, *schemeName, ln.Addr())
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
		if *reshardTo > 0 {
			// SIGHUP = live reshard to -reshard N, serving throughout.
			hup := make(chan os.Signal, 1)
			signal.Notify(hup, syscall.SIGHUP)
			go func() {
				for range hup {
					fmt.Printf("psoram-server: SIGHUP: resharding to %d shards\n", *reshardTo)
					if err := pool.Reshard(context.Background(), *reshardTo); err != nil {
						fmt.Fprintf(os.Stderr, "psoram-server: reshard: %v\n", err)
						continue
					}
					fmt.Printf("psoram-server: resharded to %d shards (epoch %d)\n",
						pool.Shards(), pool.Epoch())
				}
			}()
		}
		serveDone := make(chan error, 1)
		go func() { serveDone <- srv.Serve(ln) }()
		select {
		case s := <-sig:
			fmt.Printf("psoram-server: %v: draining (budget %v)\n", s, *drainWait)
			shutdown(srv, pool, *drainWait)
			<-serveDone
		case err := <-serveDone:
			if err != nil && err != netserve.ErrServerClosed {
				fatal(err)
			}
		}
		fmt.Println(pool.Stats().Table())
	}
}

// startServer builds the pool and front-end and binds the listener.
func startServer(listen string, shards int, blocks uint64, levels int, schemeName string,
	seed uint64, queue, batch int, storeDir string, inflight int,
	retryAfter time.Duration, crashEvery, cryptoWorkers, pipelineDepth, groupOps int,
	groupDelay time.Duration) (*serve.Pool, *netserve.Server, net.Listener) {
	scheme, err := parseScheme(schemeName)
	if err != nil {
		fatal(err)
	}
	pool, err := psoram.NewPool(blocks,
		psoram.WithShards(shards),
		psoram.WithPoolScheme(scheme),
		psoram.WithPoolLevels(levels),
		psoram.WithPoolSeed(seed),
		psoram.WithQueueDepth(queue),
		psoram.WithMaxBatch(batch),
		psoram.WithPoolStorePath(storeDir),
		psoram.WithPoolCryptoWorkers(cryptoWorkers),
		psoram.WithPoolPipelineDepth(pipelineDepth),
		psoram.WithPoolGroupCommit(groupOps, groupDelay),
	)
	if err != nil {
		fatal(err)
	}
	if crashEvery > 0 {
		var points atomic.Uint64
		n := uint64(crashEvery)
		for s := 0; s < pool.Shards(); s++ {
			if err := pool.ArmCrash(context.Background(), s, func(oracle.CrashSpec) bool {
				return points.Add(1)%n == 0
			}); err != nil {
				fatal(err)
			}
		}
	}
	srv := netserve.NewServer(pool, netserve.ServerOptions{
		MaxInFlight: inflight,
		RetryAfter:  retryAfter,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		fatal(err)
	}
	return pool, srv, ln
}

// shutdown drains the front-end, then the pool (final persist barriers
// for durable shards).
func shutdown(srv *netserve.Server, pool *serve.Pool, budget time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && err != netserve.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "psoram-server: drain: %v\n", err)
	}
	if err := pool.Close(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "psoram-server: pool close: %v\n", err)
	}
}

// runLoad drives one load run and prints the report; returns success.
func runLoad(addr string, conns int, rate float64, duration time.Duration,
	writeRatio float64, slo time.Duration, strictSLO, check, jsonOut bool, seed uint64) bool {
	rep, err := netserve.RunLoad(context.Background(), netserve.LoadOptions{
		Addr:       addr,
		Conns:      conns,
		Rate:       rate,
		Duration:   duration,
		WriteRatio: writeRatio,
		SLO:        slo,
		Seed:       seed,
		Check:      check,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "psoram-server: load: %v\n", err)
		return false
	}
	if jsonOut {
		js, _ := json.MarshalIndent(rep, "", "  ")
		fmt.Println(string(js))
	} else {
		fmt.Println(rep)
	}
	if check {
		if rep.CheckFail > 0 || rep.Errors > 0 {
			fmt.Fprintf(os.Stderr, "psoram-server: FAILED: %d check failures, %d errors\n",
				rep.CheckFail, rep.Errors)
			return false
		}
		fmt.Println("check: all values matched the reference")
	}
	if slo > 0 && !rep.SLOMet && strictSLO {
		fmt.Fprintf(os.Stderr, "psoram-server: SLO missed: p99 %v > %v\n", rep.P99, slo)
		return false
	}
	return rep.Errors == 0
}

func parseScheme(name string) (config.Scheme, error) {
	for _, sc := range config.Schemes() {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (see psoram-oracle -list)", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psoram-server: %v\n", err)
	os.Exit(1)
}
