// Command psoram-sweep regenerates whole evaluation grids — every
// (scheme × workload × channel-count × seed) cell — in one invocation,
// fanned out across a worker pool, replacing the serial per-cell
// psoram-sim loop. It can also run the crash-torture matrix the same
// way (-crash).
//
// Usage:
//
//	psoram-sweep -schemes Baseline,PS-ORAM -workloads 401.bzip2,429.mcf -channels 1,2 -workers 4
//	psoram-sweep -schemes all -workloads all -accesses 3000 -levels 16 -csv results.csv
//	psoram-sweep -crash
//	psoram-sweep -list
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/sweep"
	"repro/internal/trace"
)

func main() {
	var (
		schemesFlag   = flag.String("schemes", "all", "comma-separated schemes, or \"all\" (see -list)")
		workloadsFlag = flag.String("workloads", "all", "comma-separated Table 4 workloads, or \"all\" (see -list)")
		channelsFlag  = flag.String("channels", "1", "comma-separated memory channel counts (1, 2, 4 or 8)")
		seeds         = flag.Int("seeds", 1, "seed replicas per grid point")
		rootSeed      = flag.Uint64("seed", 1, "root seed for per-cell seed derivation")
		accesses      = flag.Int("accesses", 3000, "LLC misses simulated per cell")
		levels        = flag.Int("levels", 16, "ORAM tree height L (paper: 23)")
		workers       = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent cells (default GOMAXPROCS)")
		jsonPath      = flag.String("json", "", "write full results as JSON to this path (\"-\" = stdout)")
		csvPath       = flag.String("csv", "", "write per-cell results as CSV to this path (\"-\" = stdout)")
		crashMode     = flag.Bool("crash", false, "run the crash-torture matrix instead of the timing grid")
		oracleMode    = flag.Bool("oracle", false, "validate every cell with the functional oracle (internal/oracle)")
		quiet         = flag.Bool("quiet", false, "suppress live progress output")
		list          = flag.Bool("list", false, "list schemes and workloads, then exit")
		profileDir    = flag.String("profile", "", "write cpu.pprof + heap.pprof for the run into this directory (see EXPERIMENTS.md)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Schemes:")
		for _, s := range config.Schemes() {
			fmt.Printf("  %s\n", s)
		}
		fmt.Println("Workloads (Table 4):")
		for _, w := range trace.Table4() {
			fmt.Printf("  %s\n", w.Name)
		}
		return
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := startProfiles(*profileDir); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	opt := sweep.Options{Workers: *workers}
	if !*quiet {
		opt.OnResult = func(done, total int, r sweep.CellResult) {
			status := ""
			if r.Err != nil {
				status = "  FAILED"
			}
			fmt.Fprintf(os.Stderr, "\r\033[K[%d/%d] %s%s", done, total, r.Cell, status)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	if *crashMode {
		runCrash(ctx, opt)
		return
	}

	schemes, err := parseSchemes(*schemesFlag)
	if err != nil {
		fatal(err)
	}
	workloads, err := parseWorkloads(*workloadsFlag)
	if err != nil {
		fatal(err)
	}
	channels, err := parseChannels(*channelsFlag)
	if err != nil {
		fatal(err)
	}

	grid := sweep.Grid{
		Schemes:   schemes,
		Workloads: workloads,
		Channels:  channels,
		Seeds:     *seeds,
		RootSeed:  *rootSeed,
		Accesses:  *accesses,
		Levels:    *levels,
		Oracle:    *oracleMode,
	}
	res, err := sweep.Run(ctx, grid, opt)
	if err != nil {
		fatal(err)
	}

	// Keep stdout machine-parseable when an emitter writes to it.
	summary := io.Writer(os.Stdout)
	if *jsonPath == "-" || *csvPath == "-" {
		summary = os.Stderr
	}
	fmt.Fprintln(summary, sweep.SummaryTable(res))
	fmt.Fprintf(summary, "grid: %d cells on %d workers in %v (aggregate cell time %v, %.2fx parallel speedup)\n",
		len(res.Cells), res.Workers, res.Wall.Round(1e6), res.CellTime.Round(1e6), res.Speedup())

	if *jsonPath != "" {
		if err := emit(*jsonPath, res, sweep.WriteJSON); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		if err := emit(*csvPath, res, sweep.WriteCSV); err != nil {
			fatal(err)
		}
	}
	if failed := res.Failed(); len(failed) > 0 {
		for _, f := range failed {
			fmt.Fprintf(os.Stderr, "psoram-sweep: cell %s: %v\n", f.Cell, f.Err)
		}
		stopProfiles() // os.Exit skips defers; flush the profiles first
		os.Exit(1)
	}
}

// stopProfiles flushes any active pprof capture. It is replaced by
// startProfiles and must be invoked on every exit path (os.Exit skips
// deferred calls).
var stopProfiles = func() {}

// startProfiles begins a CPU profile in dir and arranges for a heap
// snapshot when stopProfiles runs, mirroring `go test -cpuprofile
// -memprofile` for whole-sweep runs.
func startProfiles(dir string) error {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cpuPath := filepath.Join(dir, "cpu.pprof")
	cpuFile, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cpuFile); err != nil {
		cpuFile.Close()
		return err
	}
	heapPath := filepath.Join(dir, "heap.pprof")
	stopProfiles = func() {
		stopProfiles = func() {}
		pprof.StopCPUProfile()
		cpuFile.Close()
		heapFile, err := os.Create(heapPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psoram-sweep: heap profile: %v\n", err)
			return
		}
		runtime.GC() // flush unreachable objects so in-use stats are accurate
		if err := pprof.WriteHeapProfile(heapFile); err != nil {
			fmt.Fprintf(os.Stderr, "psoram-sweep: heap profile: %v\n", err)
		}
		heapFile.Close()
		fmt.Fprintf(os.Stderr, "profiles written: %s, %s\n", cpuPath, heapPath)
	}
	return nil
}

func runCrash(ctx context.Context, opt sweep.Options) {
	m := sweep.DefaultCrashMatrix()
	results, err := sweep.RunCrashMatrix(ctx, m, opt)
	if err != nil {
		fatal(err)
	}
	fmt.Println(sweep.CrashTable(results))
}

func emit(path string, res *sweep.Results, write func(w io.Writer, r *sweep.Results) error) error {
	if path == "-" {
		return write(os.Stdout, res)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, res); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func parseSchemes(s string) ([]config.Scheme, error) {
	if s == "all" {
		return config.Schemes(), nil
	}
	var out []config.Scheme
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, sc := range config.Schemes() {
			if sc.String() == name {
				out = append(out, sc)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown scheme %q (try -list)", name)
		}
	}
	return out, nil
}

func parseWorkloads(s string) ([]trace.Workload, error) {
	if s == "all" {
		return trace.Table4(), nil
	}
	var out []trace.Workload
	for _, name := range strings.Split(s, ",") {
		w, err := trace.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func parseChannels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		ch, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad channel count %q", part)
		}
		out = append(out, ch)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no channel counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psoram-sweep: %v\n", err)
	stopProfiles() // os.Exit skips defers
	os.Exit(1)
}
