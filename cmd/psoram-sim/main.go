// Command psoram-sim runs the full-system timing simulation for one
// (scheme, workload, channel-count) combination and prints its metrics.
//
// Usage:
//
//	psoram-sim -scheme PS-ORAM -workload 401.bzip2 -accesses 5000 -channels 1 -levels 16
//	psoram-sim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/config"
)

func main() {
	var (
		schemeName = flag.String("scheme", "PS-ORAM", "scheme to simulate (see -list)")
		workload   = flag.String("workload", "401.bzip2", "Table 4 workload name (see -list)")
		accesses   = flag.Int("accesses", 5000, "LLC misses to simulate")
		channels   = flag.Int("channels", 1, "memory channels (1, 2 or 4)")
		levels     = flag.Int("levels", 16, "ORAM tree height L (paper: 23)")
		traceFile  = flag.String("trace", "", "replay a psoram-trace file instead of the synthetic workload")
		list       = flag.Bool("list", false, "list schemes and workloads, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Schemes:")
		for _, s := range psoram.Schemes() {
			fmt.Printf("  %s\n", s)
		}
		fmt.Println("Workloads (Table 4):")
		for _, w := range psoram.Workloads() {
			fmt.Printf("  %s\n", w)
		}
		return
	}

	scheme, ok := schemeByName(*schemeName)
	if !ok {
		fmt.Fprintf(os.Stderr, "psoram-sim: unknown scheme %q (try -list)\n", *schemeName)
		os.Exit(1)
	}
	cfg := psoram.DefaultConfig()
	cfg.Channels = *channels
	var (
		res psoram.SimResult
		err error
	)
	if *traceFile != "" {
		res, err = psoram.SimulateTrace(scheme, cfg, *traceFile, *levels)
	} else {
		res, err = psoram.Simulate(scheme, cfg, *workload, *accesses, *levels)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "psoram-sim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("scheme:          %s\n", scheme)
	fmt.Printf("workload:        %s\n", res.Workload)
	fmt.Printf("accesses:        %d\n", res.Accesses)
	fmt.Printf("instructions:    %d\n", res.Instrs)
	fmt.Printf("cycles:          %d\n", res.Cycles)
	fmt.Printf("cycles/access:   %.0f\n", float64(res.Cycles)/float64(res.Accesses))
	fmt.Printf("NVM reads:       %d (%.1f/access)\n", res.Reads, float64(res.Reads)/float64(res.Accesses))
	fmt.Printf("NVM writes:      %d (%.1f/access)\n", res.Writes, float64(res.Writes)/float64(res.Accesses))
	fmt.Printf("bytes read:      %d\n", res.BytesRead)
	fmt.Printf("bytes written:   %d\n", res.BytesWritten)
	fmt.Printf("NVM energy:      %.3f uJ\n", float64(res.EnergyPJ)/1e6)
	fmt.Printf("dirty entries:   %d (%.2f/access)\n", res.DirtyEntries, float64(res.DirtyEntries)/float64(res.Accesses))
	if res.ChainBlocks > 0 {
		fmt.Printf("posmap chain:    %d blocks (%.1f/access)\n", res.ChainBlocks, float64(res.ChainBlocks)/float64(res.Accesses))
	}
	fmt.Printf("pending peak:    %d (C_TPos budget: %d)\n", res.PendingPeak, cfg.TempPosMapSize)
	fmt.Printf("wear imbalance:  %.2fx (max/min bank writes)\n", res.WearImbalance)
}

func schemeByName(name string) (psoram.Scheme, bool) {
	for _, s := range config.Schemes() {
		if s.String() == name {
			return s, true
		}
	}
	return 0, false
}
