// Command psoram-depgate is the deprecation gate run by `make check`:
// it refuses to let references to deprecated symbols creep back into
// the tree after a migration.
//
// It parses every .go file in the module, records each top-level
// declaration whose doc comment carries a "Deprecated:" marker, then
// reports every reference to such a symbol outside (a) the file that
// declares it and (b) files named *deprecated_test.go — the designated
// home for back-compat wrapper tests. Any hit is a build break:
//
//	psoram-depgate            # gate the module rooted at the cwd
//	psoram-depgate -root DIR  # gate another checkout
//
// Resolution is syntactic, not type-checked: cross-package references
// are matched as pkgname.Symbol through each file's import table, and
// same-package references as bare identifiers (minus declaration
// names, selector fields, and struct keys). That is exact for this
// repo's layout — every deprecated symbol is top-level and package
// names match their directories — and keeps the gate dependency-free.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// symbol identifies one deprecated top-level declaration.
type symbol struct {
	pkgPath string // import path, e.g. "repro/internal/sim"
	name    string // exported or unexported top-level name
}

type gate struct {
	fset       *token.FileSet
	modulePath string
	root       string

	deprecated map[symbol]string    // symbol -> declaring file (absolute)
	pkgNames   map[string]string    // import path -> package name
	files      map[string]*ast.File // absolute path -> parsed file
	filePkg    map[string]string    // absolute path -> import path

	violations []string
}

func main() {
	var (
		root    = flag.String("root", ".", "module root to gate")
		verbose = flag.Bool("v", false, "list the deprecated symbols found")
	)
	flag.Parse()

	g, err := newGate(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psoram-depgate: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		var syms []symbol
		for s := range g.deprecated {
			syms = append(syms, s)
		}
		sort.Slice(syms, func(i, j int) bool {
			if syms[i].pkgPath != syms[j].pkgPath {
				return syms[i].pkgPath < syms[j].pkgPath
			}
			return syms[i].name < syms[j].name
		})
		for _, s := range syms {
			rel, _ := filepath.Rel(g.root, g.deprecated[s])
			fmt.Printf("deprecated: %s.%s (declared in %s)\n", s.pkgPath, s.name, rel)
		}
	}
	g.check()
	if len(g.violations) > 0 {
		sort.Strings(g.violations)
		for _, v := range g.violations {
			fmt.Fprintln(os.Stderr, v)
		}
		fmt.Fprintf(os.Stderr, "psoram-depgate: %d reference(s) to deprecated symbols — migrate them or move the test into a *deprecated_test.go file\n", len(g.violations))
		os.Exit(1)
	}
	fmt.Printf("psoram-depgate: clean (%d deprecated symbols, %d files)\n", len(g.deprecated), len(g.files))
}

func newGate(root string) (*gate, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := modulePath(abs)
	if err != nil {
		return nil, err
	}
	g := &gate{
		fset:       token.NewFileSet(),
		modulePath: mod,
		root:       abs,
		deprecated: make(map[symbol]string),
		pkgNames:   make(map[string]string),
		files:      make(map[string]*ast.File),
		filePkg:    make(map[string]string),
	}
	if err := g.parseTree(); err != nil {
		return nil, err
	}
	g.collectDeprecated()
	return g, nil
}

func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// parseTree loads every .go file under the root, skipping VCS metadata,
// vendored code, and testdata fixtures.
func (g *gate) parseTree() error {
	return filepath.WalkDir(g.root, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", "vendor", "testdata", "node_modules":
				return filepath.SkipDir
			}
			if strings.HasPrefix(d.Name(), ".") && p != g.root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(p, ".go") {
			return nil
		}
		f, err := parser.ParseFile(g.fset, p, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parse %s: %w", p, err)
		}
		rel, err := filepath.Rel(g.root, filepath.Dir(p))
		if err != nil {
			return err
		}
		pkgPath := g.modulePath
		if rel != "." {
			pkgPath = path.Join(g.modulePath, filepath.ToSlash(rel))
		}
		g.files[p] = f
		g.filePkg[p] = pkgPath
		// External test packages (package foo_test) share the directory
		// but reference the library through its import path, so mapping
		// the path to the non-test name keeps the import table right.
		if !strings.HasSuffix(f.Name.Name, "_test") {
			g.pkgNames[pkgPath] = f.Name.Name
		}
		return nil
	})
}

// collectDeprecated records every top-level declaration whose doc (or,
// for grouped declarations, whose spec doc) contains a Deprecated:
// paragraph marker.
func (g *gate) collectDeprecated() {
	for p, f := range g.files {
		pkgPath := g.filePkg[p]
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && isDeprecated(d.Doc) {
					g.deprecated[symbol{pkgPath, d.Name.Name}] = p
				}
			case *ast.GenDecl:
				groupDep := isDeprecated(d.Doc)
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if groupDep || isDeprecated(s.Doc) || isDeprecated(s.Comment) {
							g.deprecated[symbol{pkgPath, s.Name.Name}] = p
						}
					case *ast.ValueSpec:
						if groupDep || isDeprecated(s.Doc) || isDeprecated(s.Comment) {
							for _, n := range s.Names {
								g.deprecated[symbol{pkgPath, n.Name}] = p
							}
						}
					}
				}
			}
		}
	}
}

// isDeprecated implements the godoc convention: a paragraph (or line)
// beginning "Deprecated:".
func isDeprecated(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, line := range strings.Split(cg.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// exemptFile reports whether a file may reference deprecated symbols
// wholesale: the designated wrapper-test files.
func exemptFile(p string) bool {
	return strings.HasSuffix(filepath.Base(p), "deprecated_test.go")
}

func (g *gate) check() {
	for p, f := range g.files {
		if exemptFile(p) {
			continue
		}
		g.checkFile(p, f)
	}
}

func (g *gate) checkFile(filename string, f *ast.File) {
	ownPkg := g.filePkg[filename]

	// Import table: local name -> import path, restricted to packages
	// that actually declare deprecated symbols.
	imports := make(map[string]string)
	for _, imp := range f.Imports {
		ipath, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		} else if n, ok := g.pkgNames[ipath]; ok {
			local = n
		} else {
			local = path.Base(ipath)
		}
		if local == "_" || local == "." {
			continue
		}
		imports[local] = ipath
	}

	// Positions that are declarations or field names, never references.
	skip := make(map[token.Pos]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncDecl:
			skip[v.Name.Pos()] = true
		case *ast.TypeSpec:
			skip[v.Name.Pos()] = true
		case *ast.ValueSpec:
			for _, id := range v.Names {
				skip[id.Pos()] = true
			}
		case *ast.Field:
			for _, id := range v.Names {
				skip[id.Pos()] = true
			}
		case *ast.KeyValueExpr:
			if id, ok := v.Key.(*ast.Ident); ok {
				skip[id.Pos()] = true
			}
		case *ast.LabeledStmt:
			skip[v.Label.Pos()] = true
		case *ast.AssignStmt:
			if v.Tok == token.DEFINE {
				for _, lhs := range v.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						skip[id.Pos()] = true
					}
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, sym symbol) {
		// The declaring file may reference its own symbol (the wrapper
		// body, the doc example right next to it).
		if g.deprecated[sym] == filename {
			return
		}
		position := g.fset.Position(pos)
		rel, err := filepath.Rel(g.root, position.Filename)
		if err != nil {
			rel = position.Filename
		}
		g.violations = append(g.violations,
			fmt.Sprintf("%s:%d:%d: reference to deprecated %s.%s",
				rel, position.Line, position.Column, sym.pkgPath, sym.name))
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.SelectorExpr:
			// pkgname.Symbol — only when the base is an imported package
			// name, so methods and struct fields never match.
			if id, ok := v.X.(*ast.Ident); ok {
				if ipath, ok := imports[id.Name]; ok {
					sym := symbol{ipath, v.Sel.Name}
					if _, dep := g.deprecated[sym]; dep {
						report(v.Sel.Pos(), sym)
					}
					skip[v.Sel.Pos()] = true
					return false
				}
			}
			// Any other selector: the .Sel is a field or method, never a
			// top-level symbol; still walk X for nested references.
			skip[v.Sel.Pos()] = true
		case *ast.Ident:
			if skip[v.Pos()] {
				return true
			}
			sym := symbol{ownPkg, v.Name}
			if _, dep := g.deprecated[sym]; dep {
				report(v.Pos(), sym)
			}
		}
		return true
	})
}
