package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materialises a throwaway module for the gate to chew on.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, body := range files {
		p := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const libGo = `package lib

// Old is the ancient entry point.
//
// Deprecated: use New.
func Old() int { return New() }

// New is the replacement.
func New() int { return 1 }

// Options configures things.
//
// Deprecated: use functional options.
type Options struct{ N int }
`

func TestGateCatchesCrossPackageReference(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"lib/lib.go": libGo,
		"main.go": `package main

import "example.test/lib"

func main() { _ = lib.Old() }
`,
	})
	g, err := newGate(root)
	if err != nil {
		t.Fatal(err)
	}
	g.check()
	if len(g.violations) != 1 || !strings.Contains(g.violations[0], "example.test/lib.Old") {
		t.Fatalf("violations = %q, want one hit on lib.Old", g.violations)
	}
}

func TestGateCatchesSamePackageReference(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"lib/lib.go": libGo,
		"lib/other.go": `package lib

func indirect() int { return Old() }
`,
	})
	g, err := newGate(root)
	if err != nil {
		t.Fatal(err)
	}
	g.check()
	if len(g.violations) != 1 || !strings.Contains(g.violations[0], "lib.Old") {
		t.Fatalf("violations = %q, want one hit on lib.Old", g.violations)
	}
}

func TestGateExemptions(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"lib/lib.go": libGo, // wrapper body calls New, Old only declared here
		"lib/lib_deprecated_test.go": `package lib

import "testing"

func TestOld(t *testing.T) {
	if Old() != New() {
		t.Fatal("wrapper drifted")
	}
	_ = Options{N: 1}
}
`,
		"main_deprecated_test.go": `package main

import (
	"testing"

	"example.test/lib"
)

func TestOldFromOutside(t *testing.T) {
	if lib.Old() != 1 {
		t.Fatal(1)
	}
}
`,
		"main.go": `package main

import "example.test/lib"

func main() { _ = lib.New() }
`,
	})
	g, err := newGate(root)
	if err != nil {
		t.Fatal(err)
	}
	g.check()
	if len(g.violations) != 0 {
		t.Fatalf("exempt files flagged: %q", g.violations)
	}
}

func TestGateNonReferencesDontTrip(t *testing.T) {
	// Methods, struct fields, composite-literal keys, and local
	// variables sharing a deprecated name are not references to it.
	root := writeTree(t, map[string]string{
		"go.mod":     "module example.test\n\ngo 1.22\n",
		"lib/lib.go": libGo,
		"main.go": `package main

import "example.test/lib"

type runner struct{ Old int }

func (r runner) Run() int { return r.Old }

func main() {
	Old := 3 // local shadow, not the symbol
	r := runner{Old: Old}
	_ = r.Run() + lib.New()
}
`,
	})
	g, err := newGate(root)
	if err != nil {
		t.Fatal(err)
	}
	g.check()
	if len(g.violations) != 0 {
		t.Fatalf("false positives: %q", g.violations)
	}
}

// TestGateSelfRepo runs the gate over this repository itself — the
// same invocation `make check` uses must be clean.
func TestGateSelfRepo(t *testing.T) {
	g, err := newGate("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.deprecated) == 0 {
		t.Fatal("no deprecated symbols found in the repo; the gate is blind")
	}
	g.check()
	if len(g.violations) != 0 {
		t.Fatalf("repo references deprecated symbols:\n%s", strings.Join(g.violations, "\n"))
	}
}
