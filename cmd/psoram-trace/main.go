// Command psoram-trace generates and inspects workload trace files in
// the repository's binary trace format.
//
// Usage:
//
//	psoram-trace gen -workload 429.mcf -n 100000 -o mcf.psot
//	psoram-trace info mcf.psot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  psoram-trace gen -workload <name> -n <records> [-seed N] -o <file>
  psoram-trace info <file>`)
	os.Exit(1)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	workload := fs.String("workload", "401.bzip2", "Table 4 workload name")
	n := fs.Int("n", 100000, "records to generate")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("o", "", "output file (required)")
	_ = fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "psoram-trace: -o is required")
		os.Exit(1)
	}
	w, err := trace.ByName(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "psoram-trace: %v\n", err)
		os.Exit(1)
	}
	recs := trace.NewGenerator(w, *seed, 0).Generate(*n)
	if err := trace.Save(*out, recs); err != nil {
		fmt.Fprintf(os.Stderr, "psoram-trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d records of %s (measured MPKI %.2f, target %.2f) to %s\n",
		len(recs), w.Name, trace.MeasuredMPKI(recs), w.MPKI, *out)
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	recs, err := trace.Load(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "psoram-trace: %v\n", err)
		os.Exit(1)
	}
	var writes, instr uint64
	distinct := make(map[uint64]bool)
	var maxAddr uint64
	for _, r := range recs {
		if r.Write {
			writes++
		}
		instr += r.InstrGap
		distinct[r.Addr] = true
		if r.Addr > maxAddr {
			maxAddr = r.Addr
		}
	}
	fmt.Printf("records:        %d\n", len(recs))
	fmt.Printf("instructions:   %d\n", instr)
	fmt.Printf("MPKI:           %.2f\n", trace.MeasuredMPKI(recs))
	fmt.Printf("write fraction: %.3f\n", float64(writes)/float64(len(recs)))
	fmt.Printf("distinct addrs: %d\n", len(distinct))
	fmt.Printf("max addr:       %d\n", maxAddr)
}
