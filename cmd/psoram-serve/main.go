// Command psoram-serve is the serving-layer load generator: it stands up
// a sharded pool (internal/serve) and hammers it with concurrent
// clients, printing per-shard throughput, batching, crash/recovery, and
// latency statistics. With -check, every client diffs each returned
// value against a private reference map and the run finishes with a
// full keyspace sweep plus structural invariants — the differential
// oracle run through the serving path.
//
// Usage:
//
//	psoram-serve                                     # 4 shards x 4 clients, PS-ORAM
//	psoram-serve -shards 8 -clients 16 -ops 2000
//	psoram-serve -crash-every 500 -check             # torture: periodic power failures
//	psoram-serve -reshard 8 -check                   # live re-stripe mid-run, oracle on
//	psoram-serve -scheme Ring-PS-ORAM -write-ratio 0.9
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	psoram "repro"
	"repro/internal/config"
	"repro/internal/oracle"
	"repro/internal/oram"
)

func main() {
	var (
		shards     = flag.Int("shards", 4, "independent store shards (one goroutine each)")
		clients    = flag.Int("clients", 4, "concurrent client goroutines")
		ops        = flag.Int("ops", 1000, "operations per client")
		blocks     = flag.Uint64("blocks", 1024, "total logical blocks across the pool")
		levels     = flag.Int("levels", 0, "per-shard tree height (0 = derive from block count)")
		schemeName = flag.String("scheme", "PS-ORAM", "persistence scheme (see psoram-oracle -list)")
		seed       = flag.Uint64("seed", 1, "root seed (shards and clients derive independent streams)")
		writeRatio = flag.Float64("write-ratio", 0.5, "fraction of ops that are writes")
		queue      = flag.Int("queue", 64, "per-shard queue depth (full queue = ErrOverloaded)")
		batch      = flag.Int("batch", 8, "max requests coalesced into one protocol round")
		timeout    = flag.Duration("timeout", 0, "per-request deadline (0 = none)")
		crashEvery = flag.Int("crash-every", 0, "fire a power failure every Nth crash point (0 = off)")
		check      = flag.Bool("check", false, "diff every value against a reference and sweep the keyspace at the end")
		storeDir   = flag.String("store", "", "back every shard with a durable on-disk store under DIR (create-or-recover; flat schemes only)")
		cryptoW    = flag.Int("crypto-workers", 0, "per-shard seal fan-out workers (0/1 = inline serial sealing)")
		pipeline   = flag.Int("pipeline-depth", 0, "intra-shard pipelining depth (1 = strict serial protocol, 0 = default 4)")
		groupOps   = flag.Int("group-commit", 0, "batch each durable shard's persist barrier across up to N accesses (0/1 = serial per-access barrier)")
		groupDelay = flag.Duration("group-delay", 0, "max time an idle shard holds an open commit group (0 = small default; needs -group-commit > 1)")
		reshardTo  = flag.Int("reshard", 0, "re-stripe the live pool to N shards once half the ops have completed (0 = off)")
	)
	flag.Parse()

	scheme, err := parseScheme(*schemeName)
	if err != nil {
		fatal(err)
	}
	if *clients < 1 || *ops < 1 {
		fatal(fmt.Errorf("need at least 1 client and 1 op"))
	}
	pool, err := psoram.NewPool(*blocks,
		psoram.WithShards(*shards),
		psoram.WithPoolScheme(scheme),
		psoram.WithPoolLevels(*levels),
		psoram.WithPoolSeed(*seed),
		psoram.WithQueueDepth(*queue),
		psoram.WithMaxBatch(*batch),
		psoram.WithPoolStorePath(*storeDir),
		psoram.WithPoolCryptoWorkers(*cryptoW),
		psoram.WithPoolPipelineDepth(*pipeline),
		psoram.WithPoolGroupCommit(*groupOps, *groupDelay),
	)
	if err != nil {
		fatal(err)
	}

	if *crashEvery > 0 {
		var points atomic.Uint64
		n := uint64(*crashEvery)
		for s := 0; s < pool.Shards(); s++ {
			if err := pool.ArmCrash(context.Background(), s, func(oracle.CrashSpec) bool {
				return points.Add(1)%n == 0
			}); err != nil {
				fatal(err)
			}
		}
	}

	// Each client owns a disjoint contiguous address range so -check has
	// a race-free reference; its ops still stripe across every shard.
	perClient := *blocks / uint64(*clients)
	if perClient == 0 {
		fatal(fmt.Errorf("%d blocks cannot feed %d clients", *blocks, *clients))
	}
	bb := pool.BlockBytes()
	var (
		wg          sync.WaitGroup
		completed   atomic.Uint64
		overloads   atomic.Uint64
		resharded   atomic.Uint64
		interrupted atomic.Uint64
		failures    atomic.Uint64
	)
	refs := make([]map[uint64][]byte, *clients)
	for c := range refs {
		refs[c] = make(map[uint64][]byte)
	}
	// Restarting over a durable store: the pool recovered the previous
	// run's committed values, so the reference must start from the
	// recovered state, not from zero — which also makes -check verify
	// the recovery itself.
	if *check && *storeDir != "" {
		zero := make([]byte, bb)
		for c := 0; c < *clients; c++ {
			base := uint64(c) * perClient
			for a := base; a < base+perClient; a++ {
				if v, err := pool.Peek(context.Background(), a); err == nil && !equal(v, zero) {
					refs[c][a] = append([]byte(nil), v...)
				}
			}
		}
	}
	start := time.Now()
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			base := uint64(c) * perClient
			w := oracle.Workload{Name: fmt.Sprintf("client-%d", c), WriteRatio: *writeRatio}
			genOps := oracle.GenOps(w, perClient, bb, *ops, *seed+uint64(c))
			ref := refs[c]
			zero := make([]byte, bb)
			for i, op := range genOps {
				addr := base + op.Addr
				kind, data := oram.OpRead, []byte(nil)
				if op.Write {
					kind, data = oram.OpWrite, op.Data
				}
				for {
					ctx := context.Background()
					cancel := context.CancelFunc(func() {})
					if *timeout > 0 {
						ctx, cancel = context.WithTimeout(ctx, *timeout)
					}
					got, _, err := pool.Access(ctx, kind, addr, data)
					cancel()
					switch {
					case errors.Is(err, psoram.ErrOverloaded):
						overloads.Add(1)
						time.Sleep(100 * time.Microsecond) // back off, retry
						continue
					case errors.Is(err, psoram.ErrResharding):
						resharded.Add(1)
						time.Sleep(100 * time.Microsecond) // stripe migrating; retry
						continue
					case errors.Is(err, psoram.ErrInterrupted):
						interrupted.Add(1)
						continue // idempotent: re-issue the same op
					case errors.Is(err, context.DeadlineExceeded):
						continue // the round outlived the deadline; retry
					case err != nil:
						failures.Add(1)
						fmt.Fprintf(os.Stderr, "psoram-serve: client %d op %d: %v\n", c, i, err)
						return
					}
					if *check && !op.Write {
						want, ok := ref[addr]
						if !ok {
							want = zero
						}
						if !equal(got, want) {
							failures.Add(1)
							fmt.Fprintf(os.Stderr, "psoram-serve: client %d op %d addr %d: got %.16q want %.16q\n",
								c, i, addr, got, want)
							return
						}
					}
					break
				}
				if op.Write {
					ref[addr] = op.Data
				}
				completed.Add(1)
			}
		}(c)
	}
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	reshardErr := make(chan error, 1)
	var reshardFired atomic.Bool
	if *reshardTo > 0 {
		// Fire the migration once half the total ops have been acked, so
		// the oracle grades values written before, during, and after it.
		half := uint64(*clients) * uint64(*ops) / 2
		go func() {
			for completed.Load() < half {
				select {
				case <-clientsDone:
					reshardErr <- nil // clients finished first; nothing to do
					return
				case <-time.After(time.Millisecond):
				}
			}
			reshardFired.Store(true)
			reshardErr <- pool.Reshard(context.Background(), *reshardTo)
		}()
	} else {
		reshardErr <- nil
	}
	<-clientsDone
	wall := time.Since(start)
	if err := <-reshardErr; err != nil {
		fatal(fmt.Errorf("reshard to %d: %w", *reshardTo, err))
	}
	if *reshardTo > 0 {
		if reshardFired.Load() {
			fmt.Printf("resharded mid-run to %d shards (epoch %d)\n", pool.Shards(), pool.Epoch())
		} else {
			fmt.Println("reshard trigger never fired: run finished before the halfway mark (raise -ops)")
		}
	}

	if *check {
		if *crashEvery > 0 {
			for s := 0; s < pool.Shards(); s++ {
				if err := pool.ArmCrash(context.Background(), s, nil); err != nil {
					fatal(err)
				}
			}
		}
		for _, err := range pool.Invariants(context.Background()) {
			failures.Add(1)
			fmt.Fprintf(os.Stderr, "psoram-serve: %v\n", err)
		}
		zero := make([]byte, bb)
		for c := 0; c < *clients; c++ {
			base := uint64(c) * perClient
			for a := base; a < base+perClient; a++ {
				got, err := pool.Peek(context.Background(), a)
				if err != nil {
					fatal(err)
				}
				want, ok := refs[c][a]
				if !ok {
					want = zero
				}
				if !equal(got, want) {
					failures.Add(1)
					fmt.Fprintf(os.Stderr, "psoram-serve: final sweep addr %d: got %.16q want %.16q\n", a, got, want)
				}
			}
		}
	}

	st := pool.Stats()
	closeCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := pool.Close(closeCtx); err != nil {
		fatal(err)
	}

	fmt.Println(st.Table())
	if stages := st.StageTable(); stages != nil {
		fmt.Println(stages)
	}
	if groups := st.GroupTable(); groups != nil {
		fmt.Println(groups)
	}
	done := completed.Load()
	fmt.Printf("\n%d clients x %d ops on %d shards (%s, %d blocks): %d ops in %v (%.0f ops/s wall)\n",
		*clients, *ops, *shards, scheme, *blocks, done, wall.Round(time.Millisecond),
		float64(done)/wall.Seconds())
	fmt.Printf("overload retries: %d, reshard retries: %d, crash interruptions: %d\n",
		overloads.Load(), resharded.Load(), interrupted.Load())
	if *check {
		if failures.Load() > 0 {
			fmt.Fprintf(os.Stderr, "psoram-serve: FAILED: %d violation(s)\n", failures.Load())
			os.Exit(1)
		}
		fmt.Println("check: all values matched the reference, invariants clean")
	} else if failures.Load() > 0 {
		os.Exit(1)
	}
}

func equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func parseScheme(name string) (config.Scheme, error) {
	for _, sc := range config.Schemes() {
		if sc.String() == name {
			return sc, nil
		}
	}
	return 0, fmt.Errorf("unknown scheme %q (see psoram-oracle -list)", name)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psoram-serve: %v\n", err)
	os.Exit(1)
}
