// Command psoram-oracle runs the differential oracle and the
// crash-linearizability torture harness (internal/oracle) over any set
// of schemes: every access is diffed against a plain-map reference,
// structural invariants are checked at deep-check boundaries, the leaf
// sequence is tested for uniformity, and (with -crash) every declared
// crash-injection step is fired and the recovered store checked against
// the reference prefix replays.
//
// Usage:
//
//	psoram-oracle                                   # all schemes, 3 workloads, level 10
//	psoram-oracle -schemes PS-ORAM,Ring-PS-ORAM -levels 10,12 -crash
//	psoram-oracle -workloads all -ops 256 -json report.json
//	psoram-oracle -list
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/crash"
	"repro/internal/oracle"
	"repro/internal/stats"
)

func main() {
	var (
		schemesFlag   = flag.String("schemes", "all", "comma-separated schemes, or \"all\" (see -list)")
		workloadsFlag = flag.String("workloads", "uniform,write-heavy,hotspot", "comma-separated oracle workloads, or \"all\" (see -list)")
		levelsFlag    = flag.String("levels", "10", "comma-separated tree heights")
		ops           = flag.Int("ops", 96, "ops per (scheme, workload, level) cell")
		blocks        = flag.Uint64("blocks", 256, "logical blocks in the functional tree")
		seed          = flag.Uint64("seed", 1, "root seed for deterministic op generation")
		crashMode     = flag.Bool("crash", false, "also run crash-linearizability for the persistent schemes")
		storeDir      = flag.String("store", "", "run file-backed: give every (scheme,workload,level) cell a durable store under DIR (flat schemes only)")
		jsonPath      = flag.String("json", "", "write full reports as JSON to this path (\"-\" = stdout)")
		list          = flag.Bool("list", false, "list schemes and workloads, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("Schemes:")
		for _, s := range config.Schemes() {
			p := ""
			if s.Persistent() {
				p = "  (persistent: -crash applies)"
			}
			fmt.Printf("  %s%s\n", s, p)
		}
		fmt.Println("Workloads:")
		for _, w := range oracle.Workloads() {
			fmt.Printf("  %s\n", w.Name)
		}
		return
	}

	schemes, err := parseSchemes(*schemesFlag)
	if err != nil {
		fatal(err)
	}
	workloads, err := parseWorkloads(*workloadsFlag)
	if err != nil {
		fatal(err)
	}
	levels, err := parseLevels(*levelsFlag)
	if err != nil {
		fatal(err)
	}

	type cellReport struct {
		Scheme   string              `json:"scheme"`
		Workload string              `json:"workload"`
		Levels   int                 `json:"levels"`
		Report   *oracle.Report      `json:"report"`
		Crash    *oracle.CrashReport `json:"crash,omitempty"`
	}
	var (
		cells      []cellReport
		violations int
	)

	tab := stats.NewTable("Differential oracle",
		"Scheme", "Workload", "L", "Ops", "Violations", "Chi2 p", "Crash steps")
	bb := config.Default().BlockBytes
	for _, s := range schemes {
		for _, lv := range levels {
			for _, w := range workloads {
				genOps := oracle.GenOps(w, *blocks, bb, *ops, *seed)
				p := oracle.Params{Scheme: s, NumBlocks: *blocks, Levels: lv, Seed: *seed}
				if *storeDir != "" {
					if s == config.SchemeNonORAM || s.Ring() || s.Recursive() {
						continue // the durable backend covers the flat family only
					}
					// One fresh store per cell: recovered state from another
					// cell would fail the from-zero reference diff.
					p.StoreDir = filepath.Join(*storeDir,
						fmt.Sprintf("%s-%s-L%d", sanitize(s.String()), sanitize(w.Name), lv))
				}
				rep, err := oracle.CheckScheme(p, genOps, oracle.Options{})
				if err != nil {
					fatal(err)
				}
				violations += len(rep.Violations)
				cell := cellReport{Scheme: s.String(), Workload: w.Name, Levels: lv, Report: rep}

				crashCol := "-"
				if *crashMode && s.Persistent() {
					crep, err := oracle.CheckCrash(p, genOps, oracle.CrashOptions{})
					if err != nil {
						fatal(err)
					}
					violations += len(crep.Violations)
					cell.Crash = crep
					fired := 0
					for _, step := range crash.DeclaredStepsFor(s) {
						if crep.StepsFired[step] > 0 {
							fired++
						}
					}
					crashCol = fmt.Sprintf("%d/%d", fired, len(crash.DeclaredStepsFor(s)))
				}

				chiCol := "skip"
				if !rep.Chi2Skipped {
					chiCol = fmt.Sprintf("%.3g", rep.Chi2P)
				}
				tab.AddRow(cell.Scheme, cell.Workload, strconv.Itoa(lv),
					strconv.Itoa(rep.Ops), strconv.Itoa(len(rep.Violations)), chiCol, crashCol)
				cells = append(cells, cell)

				for _, v := range rep.Violations {
					fmt.Fprintf(os.Stderr, "psoram-oracle: %s/%s/L%d: %s\n", s, w.Name, lv, v)
				}
				if cell.Crash != nil {
					for _, v := range cell.Crash.Violations {
						fmt.Fprintf(os.Stderr, "psoram-oracle: %s/%s/L%d: %s\n", s, w.Name, lv, v)
					}
				}
			}
		}
	}

	out := os.Stdout
	if *jsonPath == "-" {
		out = os.Stderr
	}
	fmt.Fprintln(out, tab)
	if *jsonPath != "" {
		if err := emitJSON(*jsonPath, cells); err != nil {
			fatal(err)
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "psoram-oracle: %d violation(s)\n", violations)
		os.Exit(1)
	}
}

func emitJSON(path string, v any) error {
	f := os.Stdout
	if path != "-" {
		var err error
		f, err = os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func parseSchemes(s string) ([]config.Scheme, error) {
	if s == "all" {
		return config.Schemes(), nil
	}
	var out []config.Scheme
	for _, name := range strings.Split(s, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, sc := range config.Schemes() {
			if sc.String() == name {
				out = append(out, sc)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown scheme %q (try -list)", name)
		}
	}
	return out, nil
}

func parseWorkloads(s string) ([]oracle.Workload, error) {
	if s == "all" {
		return oracle.Workloads(), nil
	}
	var out []oracle.Workload
	for _, name := range strings.Split(s, ",") {
		w, err := oracle.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		lv, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad tree height %q", part)
		}
		out = append(out, lv)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no tree heights given")
	}
	return out, nil
}

// sanitize maps a scheme/workload name onto a filesystem-safe token.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, s)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psoram-oracle: %v\n", err)
	os.Exit(1)
}
