// Command psoram-benchcmp compares two pinned benchmark files (the
// `go test -json` streams that `make bench-*` writes into BENCH_*.json)
// and prints per-benchmark deltas for ns/op, B/op, and allocs/op — a
// local, dependency-free stand-in for benchstat, so a perf PR can show
// its before/after table from the tracked pins alone.
//
// Usage:
//
//	psoram-benchcmp OLD.json NEW.json
//	psoram-benchcmp -threshold 5 BENCH_serve.json /tmp/BENCH_serve.new.json
//
// Exit status 1 if any benchmark regressed by more than -threshold
// percent (ns/op), so CI can gate on it.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type result struct {
	nsPerOp  float64
	bPerOp   int64
	allocs   int64
	hasAlloc bool
}

// test2json splits one benchmark's result line across several Output
// events, so parsing concatenates all output first and then scans whole
// lines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:(?:\s+[\d.]+ [\w/-]+)*?\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func parse(path string) (map[string]result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var text strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Action string `json:"Action"`
			Output string `json:"Output"`
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate plain `go test -bench` output files too.
			text.Write(line)
			text.WriteByte('\n')
			continue
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	out := make(map[string]result)
	var order []string
	for _, line := range strings.Split(text.String(), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		var r result
		r.nsPerOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			r.bPerOp, _ = strconv.ParseInt(m[3], 10, 64)
			r.allocs, _ = strconv.ParseInt(m[4], 10, 64)
			r.hasAlloc = true
		}
		if _, seen := out[m[1]]; !seen {
			order = append(order, m[1])
		}
		out[m[1]] = r // last run wins, like benchstat with -count=1
	}
	return out, order, nil
}

func main() {
	threshold := flag.Float64("threshold", 0, "exit 1 if any ns/op regression exceeds this percent (0 = report only)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: psoram-benchcmp [-threshold PCT] OLD.json NEW.json\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldR, oldOrder, err := parse(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	newR, newOrder, err := parse(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	if len(oldR) == 0 || len(newR) == 0 {
		fatal(fmt.Errorf("no benchmark results in %s or %s", flag.Arg(0), flag.Arg(1)))
	}

	// Shared benchmarks in old-file order, then new-only ones.
	var names []string
	for _, n := range oldOrder {
		if _, ok := newR[n]; ok {
			names = append(names, n)
		}
	}
	var added []string
	for _, n := range newOrder {
		if _, ok := oldR[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-44s %14s %14s %9s %16s %12s\n", "benchmark", "old ns/op", "new ns/op", "delta", "old B/op:allocs", "new")
	regressed := false
	for _, n := range names {
		o, nw := oldR[n], newR[n]
		pct := (nw.nsPerOp - o.nsPerOp) / o.nsPerOp * 100
		if *threshold > 0 && pct > *threshold {
			regressed = true
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+8.1f%% %16s %12s\n",
			n, o.nsPerOp, nw.nsPerOp, pct, allocCol(o), allocCol(nw))
	}
	for _, n := range added {
		nw := newR[n]
		fmt.Fprintf(w, "%-44s %14s %14.0f %9s %16s %12s\n", n, "-", nw.nsPerOp, "new", "-", allocCol(nw))
	}
	for _, n := range oldOrder {
		if _, ok := newR[n]; !ok {
			fmt.Fprintf(w, "%-44s %14.0f %14s %9s\n", n, oldR[n].nsPerOp, "-", "gone")
		}
	}
	w.Flush()
	if regressed {
		fmt.Fprintf(os.Stderr, "psoram-benchcmp: ns/op regression above %.1f%%\n", *threshold)
		os.Exit(1)
	}
}

func allocCol(r result) string {
	if !r.hasAlloc {
		return "-"
	}
	return fmt.Sprintf("%d:%d", r.bPerOp, r.allocs)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "psoram-benchcmp: %v\n", err)
	os.Exit(1)
}
