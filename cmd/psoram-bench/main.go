// Command psoram-bench regenerates the paper's tables and figures and
// prints them as text tables (the rows/series of Figures 5-7 and Tables
// 1-2, plus the crash-recoverability matrix and the §5.1 ORAM-cost
// study).
//
// Usage:
//
//	psoram-bench                      # every experiment, quick scale
//	psoram-bench -exp fig5a           # one experiment
//	psoram-bench -accesses 20000 -levels 20   # closer to paper scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: "+strings.Join(psoram.Experiments(), ", ")+", or all")
		accesses = flag.Int("accesses", 3000, "LLC misses per (workload, scheme) run")
		levels   = flag.Int("levels", 16, "ORAM tree height L (paper: 23)")
	)
	flag.Parse()

	o := psoram.DefaultExperimentOptions()
	o.Accesses = *accesses
	o.Levels = *levels

	names := psoram.Experiments()
	if *exp != "all" {
		names = []string{*exp}
	}
	for _, name := range names {
		start := time.Now()
		out, err := psoram.RunExperiment(name, o)
		if err != nil {
			fmt.Fprintf(os.Stderr, "psoram-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("==> %s (%.1fs)\n%s\n", name, time.Since(start).Seconds(), out)
	}
}
