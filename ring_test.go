package psoram

import (
	"bytes"
	"testing"
)

func TestRingStoreRoundTrip(t *testing.T) {
	s, err := NewRingStore(RingStoreOptions{NumBlocks: 200, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, s.BlockSize())
	copy(data, "ring oram value")
	if err := s.Write(17, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(17)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
	if s.NumBlocks() != 200 || s.Accesses() != 2 {
		t.Fatalf("metadata: %d blocks, %d accesses", s.NumBlocks(), s.Accesses())
	}
}

func TestRingStoreCrashRecover(t *testing.T) {
	s, err := NewRingStore(RingStoreOptions{NumBlocks: 100, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, s.BlockSize())
	copy(data, "survives power loss")
	if err := s.Write(3, data); err != nil {
		t.Fatal(err)
	}
	s.CrashNow()
	if _, err := s.Read(3); err == nil {
		t.Fatal("read after crash without Recover accepted")
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("write lost across crash: %q", got)
	}
	if s.Counter("ring.journal_appends") == 0 {
		t.Fatal("persist mode journaled nothing")
	}
}

func TestRingStoreDefaultsAndValidation(t *testing.T) {
	if _, err := NewRingStore(RingStoreOptions{}); err == nil {
		t.Fatal("NumBlocks unset accepted")
	}
	s, err := NewRingStore(RingStoreOptions{NumBlocks: 50})
	if err != nil {
		t.Fatal(err)
	}
	if s.BlockSize() != 64 {
		t.Fatalf("block size %d", s.BlockSize())
	}
}

func TestRingStoreDurabilityObserver(t *testing.T) {
	s, err := NewRingStore(RingStoreOptions{NumBlocks: 64, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	s.OnDurable(func(addr uint64, v []byte) {
		if addr == 9 {
			seen = true
		}
	})
	if err := s.Write(9, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if !seen {
		t.Fatal("durability event not observed")
	}
	s.OnDurable(nil)
	if _, err := s.Read(9); err != nil {
		t.Fatal(err)
	}
}
