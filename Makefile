GO ?= go

.PHONY: all build vet test race check sweep-smoke crash-matrix oracle-smoke fuzz-smoke bench-oracle bless-golden clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-commit gate: build, vet, and the full suite under the
# race detector. -short shrinks the sweep grid cells (see
# internal/sweep.testGrid) so the parallel engine is still exercised
# end-to-end without multi-minute cells.
check: build vet
	$(GO) test -short -race ./...

# sweep-smoke regenerates the acceptance grid (3 schemes x 2 workloads x
# 2 channel counts) through the CLI on 4 workers, printing the summary
# table and the achieved parallel speedup.
sweep-smoke: build
	$(GO) run ./cmd/psoram-sweep \
		-schemes Baseline,PS-ORAM,Naive-PS-ORAM \
		-workloads 401.bzip2,429.mcf \
		-channels 1,2 -accesses 400 -levels 10 -workers 4

# crash-matrix reproduces the crash-consistency verdict table
# (paper Table 5) through the parallel pool.
crash-matrix: build
	$(GO) run ./cmd/psoram-sweep -crash -workers 4

# oracle-smoke runs the differential oracle and the crash-linearizability
# torture harness over every scheme (see EXPERIMENTS.md, "Validating a
# refactor with psoram-oracle").
oracle-smoke: build
	$(GO) run ./cmd/psoram-oracle -crash

# fuzz-smoke gives each oracle fuzz target a short coverage-guided run
# (the CI budget; raise FUZZTIME locally for a deeper session).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzOracleAccessSequence$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzStashEviction$$' -fuzztime $(FUZZTIME) .

# bench-oracle measures the per-cell cost of oracle validation and pins
# it into BENCH_oracle.json (tracked; regenerate when the oracle or the
# sweep engine changes).
bench-oracle:
	$(GO) test -run '^$$' -bench BenchmarkOracleOverhead -benchmem -json ./internal/sweep > BENCH_oracle.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_oracle.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'

# bless-golden re-pins the golden metrics after a deliberate behaviour
# change. Justify the new numbers in the commit that re-blesses.
bless-golden:
	$(GO) test ./internal/sweep -run TestGoldenMetrics -update

clean:
	$(GO) clean ./...
