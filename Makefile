GO ?= go

.PHONY: all build vet test race check depgate sweep-smoke crash-matrix oracle-smoke serve-smoke net-smoke kill9-smoke pipeline-smoke reshard-smoke group-smoke fuzz-smoke bench-oracle bench-sim bench-serve bench-store bench-net bench-compare profile perf-smoke bless-golden clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-commit gate: build, vet, the deprecation gate, the
# full suite under the race detector, the pipelining matrix smoke
# (workers x depth through the serving oracle plus a crashing CLI run),
# and the resharding smoke. -short shrinks the sweep grid cells (see
# internal/sweep.testGrid) so the parallel engine is still exercised
# end-to-end without multi-minute cells.
check: build vet depgate
	$(GO) test -short -race ./...
	$(MAKE) pipeline-smoke
	$(MAKE) reshard-smoke
	$(MAKE) group-smoke

# depgate refuses references to Deprecated: symbols outside their
# declaring file and *deprecated_test.go wrapper tests — the old
# NewStore/Serve/sim.Run surfaces stay wrappers, never call sites.
depgate:
	$(GO) run ./cmd/psoram-depgate

# sweep-smoke regenerates the acceptance grid (3 schemes x 2 workloads x
# 2 channel counts) through the CLI on 4 workers, printing the summary
# table and the achieved parallel speedup.
sweep-smoke: build
	$(GO) run ./cmd/psoram-sweep \
		-schemes Baseline,PS-ORAM,Naive-PS-ORAM \
		-workloads 401.bzip2,429.mcf \
		-channels 1,2 -accesses 400 -levels 10 -workers 4

# crash-matrix reproduces the crash-consistency verdict table
# (paper Table 5) through the parallel pool.
crash-matrix: build
	$(GO) run ./cmd/psoram-sweep -crash -workers 4

# oracle-smoke runs the differential oracle and the crash-linearizability
# torture harness over every scheme (see EXPERIMENTS.md, "Validating a
# refactor with psoram-oracle").
oracle-smoke: build
	$(GO) run ./cmd/psoram-oracle -crash

# serve-smoke proves the serving layer under the race detector: the
# differential oracle driven through a concurrent sharded pool, the
# kill-mid-batch crash torture, and a short CLI load run with -check.
serve-smoke: build
	$(GO) test -race -count=1 -run 'TestPoolOracle|TestPoolConcurrentOracle|TestCrashTorture' ./internal/serve
	$(GO) run -race ./cmd/psoram-serve -shards 4 -clients 4 -ops 200 -blocks 256 -levels 6 -check -crash-every 300

# net-smoke proves the TCP front-end under the race detector: the frame
# codec units, the N-connections-times-M-streams differential oracle
# over real sockets, slow-reader isolation, overload mapping, the
# cancellation edges with the goroutine-leak guard, the network kill -9
# torture (-short slice), and an in-process server + open-loop load run
# with every value diffed against the reference (-check).
net-smoke: build
	$(GO) test -race -short -count=1 ./internal/netserve
	$(GO) run -race ./cmd/psoram-server -self -shards 4 -blocks 256 -levels 6 \
		-conns 8 -rate 2000 -duration 2s -check

# kill9-smoke is the CI-budget slice of the crash-recovery torture: a
# few real SIGKILLs per scheme against the file-backed store plus the
# corruption table and the mutation check (a sabotaged persist barrier
# must be caught). The full 58-kill-point sweep runs in `make test` /
# `make race` (no -short).
kill9-smoke: build
	$(GO) test -race -short -count=1 -run 'TestKill9|TestCorruptionTable|TestFreshDirIsNoStore' ./internal/storage/filestore

# pipeline-smoke sweeps the intra-shard pipelining matrix — crypto
# workers {1,4} x pipeline depth {1,4} — through the serving-layer
# differential oracle, the Depth(1)+Workers(1) byte-equivalence check
# against the bare serial controller, and the read-combining suite,
# all under the race detector; then the kill -9 recovery torture
# (-short slice) and a crash-torture CLI run with the whole machinery
# armed.
pipeline-smoke: build
	$(GO) test -race -count=1 -run 'TestPipelineMatrixOracle|TestDepthOneByteIdenticalToSerial|TestReadCombining|TestWritesNeverCombine|TestPipelined' ./internal/serve
	$(GO) test -race -short -count=1 -run 'TestKill9' ./internal/storage/filestore
	$(GO) run -race ./cmd/psoram-serve -shards 2 -clients 4 -ops 150 -blocks 256 -levels 6 \
		-check -crash-every 250 -crypto-workers 4 -pipeline-depth 4

# reshard-smoke proves elastic resharding under the race detector: the
# oracle-validated split-then-merge under concurrent load, durable
# adoption across restart, backpressure/busy semantics, the same
# migration driven over TCP while clients hammer the pool, the SIGKILL
# -mid-migration torture (-short slice), and an oracle-checked CLI run
# that re-stripes 4 -> 6 shards halfway through.
reshard-smoke: build
	$(GO) test -race -count=1 -run 'TestReshard' ./internal/serve
	$(GO) test -race -short -count=1 -run 'TestNetReshard' ./internal/netserve
	$(GO) run -race ./cmd/psoram-serve -shards 4 -clients 4 -ops 300 -blocks 512 -levels 6 \
		-check -reshard 6

# group-smoke proves group-commit durability under the race detector:
# the GroupCommit(1) on-disk byte-equivalence gate, the grouped commit
# ticket/equivalence suite, the async-barrier epoch turnover and stray
# sweep tests, the group kill -9 torture (acks only from commit
# callbacks; -short slice) plus its mutation check, the serve-layer
# group tests, and an oracle-checked CLI run with group commit armed on
# a durable pool.
group-smoke: build
	$(GO) test -race -count=1 -run 'TestGroupCommit|TestAsync' ./internal/core ./internal/storage/filestore
	$(GO) test -race -short -count=1 -run 'TestKill9Group' ./internal/storage/filestore
	$(GO) test -race -count=1 -run 'TestPoolGroupCommit' ./internal/serve
	rm -rf /tmp/psoram-group-smoke-store
	$(GO) run -race ./cmd/psoram-serve -shards 2 -clients 4 -ops 150 -blocks 256 -levels 6 \
		-check -store /tmp/psoram-group-smoke-store -group-commit 8 -group-delay 2ms && \
		rm -rf /tmp/psoram-group-smoke-store

# fuzz-smoke gives each oracle fuzz target a short coverage-guided run
# (the CI budget; raise FUZZTIME locally for a deeper session).
FUZZTIME ?= 30s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzOracleAccessSequence$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzStashEviction$$' -fuzztime $(FUZZTIME) .
	$(GO) test -run '^$$' -fuzz '^FuzzFilestoreRecovery$$' -fuzztime $(FUZZTIME) ./internal/storage/filestore
	$(GO) test -run '^$$' -fuzz '^FuzzFrameCodec$$' -fuzztime $(FUZZTIME) ./internal/netserve

# bench-oracle measures the per-cell cost of oracle validation and pins
# it into BENCH_oracle.json (tracked; regenerate when the oracle or the
# sweep engine changes).
bench-oracle:
	$(GO) test -run '^$$' -bench BenchmarkOracleOverhead -benchmem -json ./internal/sweep > BENCH_oracle.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_oracle.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'

# bench-sim measures steady-state cost per simulated access for the
# headline schemes and pins it into BENCH_sim.json (tracked; regenerate
# when sim/mem/oram hot paths change). Compare two checkouts with
# benchstat: see EXPERIMENTS.md, "Profiling the simulator".
bench-sim:
	$(GO) test -run '^$$' -bench BenchmarkSim -benchmem -benchtime=2s -json ./internal/sim > BENCH_sim.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_sim.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'

# bench-serve measures end-to-end serving throughput across shard counts
# plus the bare functional store on the same tree shape (no pool — the
# gap is the serving layer's own overhead) and pins both into
# BENCH_serve.json (tracked; regenerate when the serving layer or the
# core access path changes). Compare against the pinned baseline with
# benchstat: see EXPERIMENTS.md, "Profiling the serving data path".
bench-serve:
	$(GO) test -run '^$$' -bench 'BenchmarkPoolThroughput|^BenchmarkStoreAccess$$' -benchmem -benchtime=1s -json ./internal/serve . > BENCH_serve.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_serve.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'

# bench-store measures the per-access price of crash consistency: the
# durable file backend (chunk writes + fsyncs + version flip per access)
# against the in-memory BenchmarkStoreAccess on the identical tree
# shape, pinned into BENCH_store.json (tracked; regenerate when the
# filestore persist barrier or chunk layout changes). Numbers are
# storage-stack dependent — compare within one machine with benchstat.
bench-store:
	$(GO) test -run '^$$' -bench '^BenchmarkFileStoreAccess$$|^BenchmarkStoreAccess$$' -benchmem -benchtime=1s -json . > BENCH_store.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_store.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'

# bench-net measures loopback serving capacity through the whole
# network stack — framing, TCP, pipelining, the sharded pool, real
# PS-ORAM accesses — from 64 concurrent connections, and pins ns/op
# plus the client-observed p50/p99 into BENCH_net.json (tracked;
# regenerate when the protocol, client, or serving layer changes).
# Loopback numbers are machine dependent — compare within one machine
# with benchstat.
bench-net:
	$(GO) test -run '^$$' -bench '^BenchmarkNetThroughput$$' -benchmem -benchtime=1s -json ./internal/netserve > BENCH_net.json
	@grep -o '"Output":"[^"]*ns/op[^"]*' BENCH_net.json | sed 's/"Output":"//;s/\\t/  /g;s/\\n//'

# bench-compare re-runs the serving benchmarks into a scratch file and
# diffs them against the tracked pin with the local comparer (benchstat
# is not assumed installed; psoram-benchcmp parses the -json pins and
# exits 1 on a >15% ns/op regression — above this machine's observed
# run-to-run noise). Compare any two pins directly with
# `go run ./cmd/psoram-benchcmp OLD.json NEW.json`.
BENCH_NEW ?= /tmp/BENCH_serve.new.json
BENCH_STORE_NEW ?= /tmp/BENCH_store.new.json
bench-compare:
	$(GO) test -run '^$$' -bench 'BenchmarkPoolThroughput|^BenchmarkStoreAccess$$' -benchmem -benchtime=1s -json ./internal/serve . > $(BENCH_NEW)
	$(GO) run ./cmd/psoram-benchcmp -threshold 15 BENCH_serve.json $(BENCH_NEW)
	$(GO) test -run '^$$' -bench '^BenchmarkFileStoreAccess$$|^BenchmarkStoreAccess$$' -benchmem -benchtime=1s -json . > $(BENCH_STORE_NEW)
	$(GO) run ./cmd/psoram-benchcmp -threshold 40 BENCH_store.json $(BENCH_STORE_NEW)

# profile captures CPU + heap pprof for a representative sweep via the
# psoram-sweep -profile flag; inspect with `go tool pprof profiles/cpu.pprof`.
PROFILE_DIR ?= profiles
profile: build
	$(GO) run ./cmd/psoram-sweep \
		-schemes Baseline,PS-ORAM,Naive-PS-ORAM -workloads 401.bzip2,429.mcf \
		-channels 1 -accesses 2000 -levels 14 -workers 1 -quiet \
		-profile $(PROFILE_DIR)

# perf-smoke is the CI perf job: the zero-allocation guards (simulator,
# core controller, and serving layer), the golden determinism
# regression, and one pass of the sim and serve benchmarks with
# -benchtime=1x (harness correctness, not timing).
perf-smoke:
	$(GO) test ./internal/sim -run 'TestSteadyStateZeroAllocs|TestGoldenDeterminismRegression' -v
	$(GO) test ./internal/core -run 'TestCoreSteadyStateAllocs|TestCorePooledSteadyStateAllocs|TestCoreFileStoreSteadyStateAllocs' -short -v
	$(GO) test ./internal/serve -run 'TestServeSteadyStateAllocs|TestServePipelinedSteadyStateAllocs|TestServeFileStoreSteadyStateAllocs' -short -v
	$(GO) test -run '^$$' -bench BenchmarkSim -benchtime=1x -benchmem ./internal/sim
	$(GO) test -run '^$$' -bench 'BenchmarkPoolThroughput|^BenchmarkStoreAccess$$|^BenchmarkFileStoreAccess$$' -benchtime=1x -benchmem ./internal/serve .

# bless-golden re-pins the golden metrics after a deliberate behaviour
# change. Justify the new numbers in the commit that re-blesses.
bless-golden:
	$(GO) test ./internal/sweep -run TestGoldenMetrics -update

clean:
	$(GO) clean ./...
