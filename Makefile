GO ?= go

.PHONY: all build vet test race check sweep-smoke crash-matrix bless-golden clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is the pre-commit gate: build, vet, and the full suite under the
# race detector. -short shrinks the sweep grid cells (see
# internal/sweep.testGrid) so the parallel engine is still exercised
# end-to-end without multi-minute cells.
check: build vet
	$(GO) test -short -race ./...

# sweep-smoke regenerates the acceptance grid (3 schemes x 2 workloads x
# 2 channel counts) through the CLI on 4 workers, printing the summary
# table and the achieved parallel speedup.
sweep-smoke: build
	$(GO) run ./cmd/psoram-sweep \
		-schemes Baseline,PS-ORAM,Naive-PS-ORAM \
		-workloads 401.bzip2,429.mcf \
		-channels 1,2 -accesses 400 -levels 10 -workers 4

# crash-matrix reproduces the crash-consistency verdict table
# (paper Table 5) through the parallel pool.
crash-matrix: build
	$(GO) run ./cmd/psoram-sweep -crash -workers 4

# bless-golden re-pins the golden metrics after a deliberate behaviour
# change. Justify the new numbers in the commit that re-blesses.
bless-golden:
	$(GO) test ./internal/sweep -run TestGoldenMetrics -update

clean:
	$(GO) clean ./...
