package psoram

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func newStore(t *testing.T, scheme Scheme) *Store {
	t.Helper()
	cfg := DefaultConfig()
	cfg.StashEntries = 150
	s, err := New(100, WithScheme(scheme), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestNewFunctionalOptions pins the options constructor: each option
// lands where the deprecated positional struct used to put it (the
// wrapper-equivalence check lives in psoram_deprecated_test.go).
func TestNewFunctionalOptions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StashEntries = 150
	s, err := New(100, WithScheme(Baseline), WithConfig(cfg), WithRNGSeed(9), WithLevels(8))
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheme() != Baseline {
		t.Fatalf("scheme = %v", s.Scheme())
	}
	if _, err := New(0); err == nil {
		t.Fatal("numBlocks=0 accepted")
	}

	// WithCrashInjector arms before the first access.
	s2, err := New(100, WithConfig(cfg), WithCrashInjector(func(CrashPoint) bool { return true }))
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Write(3, make([]byte, s2.BlockSize())); err != ErrCrashed {
		t.Fatalf("constructor-armed injector did not fire: %v", err)
	}
	if err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreReadWrite(t *testing.T) {
	s := newStore(t, PSORAM)
	if s.BlockSize() != 64 || s.NumBlocks() != 100 || s.Scheme() != PSORAM {
		t.Fatalf("store metadata wrong: %d %d %v", s.BlockSize(), s.NumBlocks(), s.Scheme())
	}
	data := make([]byte, 64)
	copy(data, "hello oblivious world")
	if err := s.Write(7, data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
	if s.Accesses() != 2 {
		t.Fatalf("accesses = %d", s.Accesses())
	}
	if s.Cycles() == 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestStoreDefaults(t *testing.T) {
	s, err := New(50)
	if err != nil {
		t.Fatal(err)
	}
	if s.Scheme() != PSORAM {
		t.Fatalf("default scheme = %v, want PSORAM", s.Scheme())
	}
	if _, err := New(0); err == nil {
		t.Fatal("NumBlocks unset should error")
	}
}

func TestStoreCrashRecover(t *testing.T) {
	s := newStore(t, PSORAM)
	data := make([]byte, 64)
	copy(data, "durable value")
	if err := s.Write(3, data); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(3); err == nil {
		t.Fatal("read after crash without Recover should fail")
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("lost durable value across crash: %q", got)
	}
}

func TestStoreCrashAtHook(t *testing.T) {
	s := newStore(t, PSORAM)
	s.CrashAt(func(p CrashPoint) bool { return p.Step == 4 })
	err := s.Write(1, make([]byte, 64))
	if err != ErrCrashed {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	s.CrashAt(nil)
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Read(1); err != nil {
		t.Fatal(err)
	}
}

func TestStoreDurabilityObserver(t *testing.T) {
	s := newStore(t, PSORAM)
	seen := map[uint64]bool{}
	s.OnDurable(func(addr uint64, value []byte) { seen[addr] = true })
	if err := s.Write(9, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if !seen[9] {
		t.Fatal("durability event for written block not observed")
	}
	s.OnDurable(nil) // must not panic afterwards
	if _, err := s.Read(9); err != nil {
		t.Fatal(err)
	}
}

func TestStoreCounters(t *testing.T) {
	s := newStore(t, PSORAM)
	if _, err := s.Read(0); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c["oram.accesses"] != 1 || c["nvm.reads"] == 0 {
		t.Fatalf("counters: %v", c)
	}
}

func TestSimulateFacade(t *testing.T) {
	res, err := Simulate(PSORAM, DefaultConfig(), "403.gcc", 200, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Accesses != 200 {
		t.Fatalf("result: %+v", res)
	}
	if _, err := Simulate(PSORAM, DefaultConfig(), "nope", 10, 10); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestWorkloadsList(t *testing.T) {
	ws := Workloads()
	if len(ws) != 14 {
		t.Fatalf("want 14 workloads, got %d", len(ws))
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	out, err := RunExperiment("table2", DefaultExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "eADR-ORAM") {
		t.Fatalf("table2 output:\n%s", out)
	}
	if _, err := RunExperiment("nope", DefaultExperimentOptions()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Experiments()) < 8 {
		t.Fatal("experiment list too short")
	}
}

func TestVerifyCrashConsistencyFacade(t *testing.T) {
	res, err := VerifyCrashConsistency(PSORAM, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fired == 0 || res.Consistent != res.Fired {
		t.Fatalf("PS-ORAM sweep: %d fired, %d consistent", res.Fired, res.Consistent)
	}
	base, err := VerifyCrashConsistency(Baseline, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Failures) == 0 {
		t.Fatal("baseline sweep found no corruption")
	}
}

func TestSimulateThroughCachesFacade(t *testing.T) {
	res, err := SimulateThroughCaches(PSORAM, DefaultConfig(), "403.gcc", 20000, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses == 0 || res.Accesses > 10000 {
		t.Fatalf("cache-filtered run produced %d ORAM accesses from 20000 refs", res.Accesses)
	}
	if res.LatencyP99 < res.LatencyP50 || res.LatencyP50 == 0 {
		t.Fatalf("latency percentiles wrong: p50=%d p99=%d", res.LatencyP50, res.LatencyP99)
	}
}

func TestFullScaleTable3Geometry(t *testing.T) {
	// The paper's full L=23 geometry must be constructible and runnable
	// (a short burst; the figures use smaller trees for speed).
	if testing.Short() {
		t.Skip("full-scale geometry run skipped in -short mode")
	}
	res, err := Simulate(PSORAM, DefaultConfig(), "403.gcc", 100, 23)
	if err != nil {
		t.Fatal(err)
	}
	// Z*(L+1) = 96 reads per access at L=23.
	if got := float64(res.Reads) / float64(res.Accesses); got < 95 || got > 100 {
		t.Fatalf("reads/access = %.1f, want ~96 at L=23", got)
	}
}

func TestStoreWithIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StashEntries = 150
	cfg.Integrity = true
	s, err := New(100, WithScheme(PSORAM), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	copy(data, "verified and durable")
	if err := s.Write(8, data); err != nil {
		t.Fatal(err)
	}
	if err := s.CrashNow(); err != nil {
		t.Fatal(err)
	}
	if err := s.Recover(); err != nil {
		t.Fatal(err)
	}
	got, err := s.Read(8)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("integrity store lost data: %q", got)
	}
	if s.Counters()["integrity.verified_paths"] == 0 {
		t.Fatal("no paths verified")
	}
}

func TestRunEveryExperimentTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment dispatch skipped in -short mode")
	}
	o := DefaultExperimentOptions()
	o.Accesses = 200
	o.Levels = 10
	o.Workloads = o.Workloads[:2]
	for _, name := range Experiments() {
		name := name
		t.Run(name, func(t *testing.T) {
			out, err := RunExperiment(name, o)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(out) < 40 {
				t.Fatalf("%s: implausibly short output:\n%s", name, out)
			}
		})
	}
}

func TestStoreSaveLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.StashEntries = 150
	s, err := New(100, WithScheme(PSORAM), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64)
	copy(data, "persists across process restarts")
	if err := s.Write(12, data); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := s.Save(&snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadStore(&snap, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := loaded.Read(12)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("snapshot lost data: %q", got)
	}
}

// TestServeFacade exercises the top-level serving-pool exposure:
// concurrent reads and writes through psoram.NewPool, typed error
// surfaces, and per-shard stats.
func TestServeFacade(t *testing.T) {
	pool, err := NewPool(128, WithShards(4), WithPoolSeed(1), WithPoolLevels(6))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	data := make([]byte, pool.BlockBytes())
	copy(data, "served")
	if err := pool.Write(ctx, 9, data); err != nil {
		t.Fatal(err)
	}
	got, err := pool.Read(ctx, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q", got)
	}
	st := pool.Stats()
	if len(st.Shards) != 4 {
		t.Fatalf("stats cover %d shards", len(st.Shards))
	}
	if sub, _, done, _ := st.Totals(); sub != 2 || done != 2 {
		t.Fatalf("submitted=%d completed=%d, want 2/2", sub, done)
	}
	if err := pool.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Read(ctx, 9); err != ErrPoolClosed {
		t.Fatalf("post-close read: %v", err)
	}
}
