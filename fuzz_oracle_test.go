package psoram

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/oram"
)

// fuzzSchemes are the schemes the access-sequence fuzzer rotates
// through: the two persistent flagships, the naive variant, eADR, and
// the volatile baseline as a control.
var fuzzSchemes = []config.Scheme{
	config.SchemePSORAM,
	config.SchemeNaivePSORAM,
	config.SchemeEADRORAM,
	config.SchemeRingPSORAM,
	config.SchemeBaseline,
}

// FuzzOracleAccessSequence decodes an arbitrary op sequence from the
// fuzz input and pushes it through the differential oracle: value
// mismatches against the plain-map reference and structural-invariant
// breaches fail the run. The obliviousness probe is deliberately off —
// a coverage-guided fuzzer can steer any statistical test below any
// threshold, so it would only manufacture false positives here.
func FuzzOracleAccessSequence(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 2, 3, 4, 5})
	f.Add(uint8(1), []byte{9, 0, 9, 1, 9, 2, 9, 3})
	f.Add(uint8(3), bytes.Repeat([]byte{31, 8}, 30))

	bb := config.Default().BlockBytes
	f.Fuzz(func(t *testing.T, sel uint8, raw []byte) {
		if len(raw) > 160 {
			raw = raw[:160]
		}
		scheme := fuzzSchemes[int(sel)%len(fuzzSchemes)]
		const blocks = 32
		var ops []oracle.Op
		version := 0
		for i := 0; i+1 < len(raw); i += 2 {
			addr := uint64(raw[i]) % blocks
			if raw[i+1]%2 == 1 {
				version++
				ops = append(ops, oracle.Op{Write: true, Addr: addr, Data: oracle.Value(addr, version, bb)})
			} else {
				ops = append(ops, oracle.Op{Addr: addr})
			}
		}
		rep, err := oracle.CheckScheme(
			oracle.Params{Scheme: scheme, NumBlocks: blocks, Levels: 4, Seed: 11},
			ops, oracle.Options{SkipObliviousness: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range rep.Violations {
			t.Errorf("%s: %s", scheme, v)
		}

		// File-backed variant: the same sequence against a durable store
		// that is closed and reopened at a fuzzer-chosen cut, differenced
		// access-by-access against an in-memory twin that never restarts.
		// The persistent schemes promise the reopen is invisible at the
		// value level, so any divergence is a crash-consistency bug.
		fuzzDurableReopen(t, sel, raw, ops)
	})
}

// fuzzDurableReopen runs ops through (a) an in-memory controller and
// (b) a file-backed controller torn down and recovered mid-sequence,
// requiring identical values throughout and on a final sweep.
func fuzzDurableReopen(t *testing.T, sel uint8, raw []byte, ops []oracle.Op) {
	if len(ops) == 0 {
		return
	}
	if len(ops) > 24 {
		ops = ops[:24] // each file op carries several fsyncs; keep an exec cheap
	}
	scheme := config.SchemePSORAM
	if sel%2 == 1 {
		scheme = config.SchemeNaivePSORAM
	}
	cut := int(raw[0]) % (len(ops) + 1)

	const blocks = 32
	cfg := config.Default()
	cfg.Seed = 11
	opts := core.Options{NumBlocks: blocks, Levels: 4}
	mem, err := core.New(scheme, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")
	fc, created, err := core.NewDurable(scheme, cfg, opts, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("durable controller reopened a store in a fresh dir")
	}
	for i, op := range ops {
		if i == cut {
			if err := fc.Close(); err != nil {
				t.Fatalf("close at cut %d: %v", cut, err)
			}
			if fc, created, err = core.NewDurable(scheme, cfg, opts, dir); err != nil {
				t.Fatalf("reopen at cut %d: %v", cut, err)
			}
			if created {
				t.Fatalf("reopen at cut %d recreated instead of recovering", cut)
			}
		}
		kind, data := oram.OpRead, []byte(nil)
		if op.Write {
			kind, data = oram.OpWrite, op.Data
		}
		rm, err := mem.Access(kind, oram.Addr(op.Addr), data)
		if err != nil {
			t.Fatalf("mem op %d: %v", i, err)
		}
		rf, err := fc.Access(kind, oram.Addr(op.Addr), data)
		if err != nil {
			t.Fatalf("%s file op %d (cut %d): %v", scheme, i, cut, err)
		}
		if !bytes.Equal(rm.Value, rf.Value) {
			t.Fatalf("%s op %d (cut %d): mem %.16q, file %.16q", scheme, i, cut, rm.Value, rf.Value)
		}
	}
	for a := uint64(0); a < blocks; a++ {
		vm, errM := mem.Peek(oram.Addr(a))
		vf, errF := fc.Peek(oram.Addr(a))
		if (errM == nil) != (errF == nil) {
			t.Fatalf("%s addr %d (cut %d): mem err %v, file err %v", scheme, a, cut, errM, errF)
		}
		if !bytes.Equal(vm, vf) {
			t.Fatalf("%s addr %d (cut %d): mem %.16q, file %.16q", scheme, a, cut, vm, vf)
		}
	}
	if err := fc.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzStashEviction drives a small functional ORAM through
// fuzzer-chosen accesses, then checks the eviction planner on a
// fuzzer-chosen leaf: the plan plus the unplaced remainder must be
// exactly the ordered input (nothing dropped, nothing duplicated), and
// every placed block must land at a level on the path to its own
// target leaf.
func FuzzStashEviction(f *testing.F) {
	f.Add(uint16(0), []byte{1, 2, 3})
	f.Add(uint16(7), []byte{20, 0, 20, 1, 20, 2})
	f.Add(uint16(512), bytes.Repeat([]byte{5, 13, 21}, 10))

	f.Fuzz(func(t *testing.T, leafSel uint16, raw []byte) {
		if len(raw) > 96 {
			raw = raw[:96]
		}
		c, err := oram.New(oram.Params{
			Levels: 4, Z: 4, BlockBytes: 16, StashEntries: 64, NumBlocks: 24, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range raw {
			if _, _, err := c.Access(oram.OpRead, oram.Addr(uint64(b)%c.NumBlocks()), nil); err != nil {
				t.Fatal(err)
			}
		}
		l := oram.Leaf(uint64(leafSel) % c.Tree.Leaves())
		ordered := c.DefaultEvictionOrder(l)
		plan, unplaced := c.PlanEviction(l, ordered)

		// Multiset equality via pointer counts: plan ∪ unplaced == ordered.
		want := make(map[*oram.StashBlock]int, len(ordered))
		for _, b := range ordered {
			want[b]++
		}
		for k, lvl := range plan {
			for _, b := range lvl {
				if b == nil {
					continue
				}
				want[b]--
				if want[b] < 0 {
					t.Fatalf("block %d placed more times than it appears in the order", b.Addr)
				}
				if deepest := c.Tree.IntersectLevel(l, b.TargetLeaf()); k > deepest {
					t.Fatalf("block %d (target leaf %d) placed at level %d below its deepest legal level %d",
						b.Addr, b.TargetLeaf(), k, deepest)
				}
			}
		}
		for _, b := range unplaced {
			want[b]--
			if want[b] < 0 {
				t.Fatalf("block %d appears in unplaced more times than in the order", b.Addr)
			}
		}
		for b, n := range want {
			if n != 0 {
				t.Fatalf("block %d dropped by the planner (%d unaccounted)", b.Addr, n)
			}
		}
	})
}
